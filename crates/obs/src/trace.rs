//! Chrome-trace (`chrome://tracing` / Perfetto) event collection and
//! JSON export.
//!
//! Each thread records `B`/`E` events into its own buffer (an
//! `Arc<Mutex<Vec<_>>>` the exporter can reach after the thread dies);
//! push order within a buffer is real time order, so per-thread
//! timestamps are monotonic and nesting is correct by construction.
//! Timestamps are microseconds since a process-wide epoch taken at the
//! first traced event.

use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Per-buffer event cap: a runaway full-length run stops growing its
/// buffers instead of exhausting memory (spans opened past the cap are
/// skipped whole, keeping `B`/`E` pairing intact).
const MAX_EVENTS_PER_THREAD: usize = 1 << 21;

pub(crate) struct TraceEvent {
    name: &'static str,
    /// `b'B'` or `b'E'`.
    ph: u8,
    ts_nanos: u64,
    bytes: u64,
}

struct TraceBuf {
    tid: u64,
    thread_name: String,
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn buffers() -> &'static Mutex<Vec<TraceBuf>> {
    static B: OnceLock<Mutex<Vec<TraceBuf>>> = OnceLock::new();
    B.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static E: OnceLock<Instant> = OnceLock::new();
    *E.get_or_init(Instant::now)
}

struct ThreadTrace {
    events: Arc<Mutex<Vec<TraceEvent>>>,
    /// Nesting depth of spans skipped because the buffer hit its cap;
    /// their matching `E` events must be skipped too.
    skip_depth: std::cell::Cell<u32>,
}

thread_local! {
    static TRACE: ThreadTrace = {
        static NEXT_TID: AtomicU64 = AtomicU64::new(1);
        let events = Arc::new(Mutex::new(Vec::new()));
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let thread_name = std::thread::current().name().unwrap_or("").to_string();
        lock(buffers()).push(TraceBuf {
            tid,
            thread_name,
            events: Arc::clone(&events),
        });
        ThreadTrace { events, skip_depth: std::cell::Cell::new(0) }
    };
}

pub(crate) fn record_event(name: &'static str, ph: u8, bytes: u64) {
    let ts_nanos = epoch().elapsed().as_nanos() as u64;
    // Events during thread teardown (TLS gone) are dropped — the spans
    // this workspace opens never live that late.
    let _ = TRACE.try_with(|t| {
        if ph == b'E' && t.skip_depth.get() > 0 {
            t.skip_depth.set(t.skip_depth.get() - 1);
            return;
        }
        let mut ev = lock(&t.events);
        if ph == b'B' && ev.len() >= MAX_EVENTS_PER_THREAD {
            t.skip_depth.set(t.skip_depth.get() + 1);
            return;
        }
        ev.push(TraceEvent {
            name,
            ph,
            ts_nanos,
            bytes,
        });
    });
}

/// Drop every collected event (buffers stay registered). The overhead
/// bench calls this between arms; tests call it for isolation.
pub fn clear_trace() {
    for buf in lock(buffers()).iter() {
        lock(&buf.events).clear();
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize every collected event as a chrome-trace JSON array (one
/// event object per line; `M` thread-name metadata first, then each
/// thread's `B`/`E` events in recorded order).
pub fn write_trace(w: &mut dyn Write) -> io::Result<()> {
    let bufs = lock(buffers());
    let mut lines: Vec<String> = Vec::new();
    for buf in bufs.iter() {
        if buf.thread_name.is_empty() {
            continue;
        }
        lines.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            buf.tid,
            escape_json(&buf.thread_name)
        ));
    }
    for buf in bufs.iter() {
        for ev in lock(&buf.events).iter() {
            let args = if ev.ph == b'E' && ev.bytes > 0 {
                format!(",\"args\":{{\"bytes\":{}}}", ev.bytes)
            } else {
                String::new()
            };
            lines.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"ebtrain\",\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{:.3}{}}}",
                escape_json(ev.name),
                ev.ph as char,
                buf.tid,
                ev.ts_nanos as f64 / 1000.0,
                args
            ));
        }
    }
    writeln!(w, "[")?;
    for (i, line) in lines.iter().enumerate() {
        let sep = if i + 1 == lines.len() { "" } else { "," };
        writeln!(w, "{line}{sep}")?;
    }
    writeln!(w, "]")
}

/// Write the trace to a file path (creating/truncating it).
pub fn write_trace_to(path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    write_trace(&mut w)?;
    w.flush()
}

/// The `EBTRAIN_TRACE` destination, when set and non-empty.
pub fn trace_env_path() -> Option<PathBuf> {
    crate::trace_env_path_raw()
        .filter(|p| !p.is_empty())
        .map(PathBuf::from)
}

/// Write the collected trace to the `EBTRAIN_TRACE` path, if one is
/// set; returns the path written. The fig binaries call this at the
/// end of `main` (errors are reported on stderr, never fatal).
pub fn flush_trace() -> Option<PathBuf> {
    let path = trace_env_path()?;
    match write_trace_to(&path) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("[obs] failed to write trace to {}: {e}", path.display());
            None
        }
    }
}
