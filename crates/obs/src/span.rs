//! RAII timing spans.

use std::time::Instant;

/// Guard returned by [`span`] / the [`span!`](crate::span!) macro.
/// Dropping it records the elapsed time (and the `bytes` attribute)
/// into the registry and, when tracing is active, closes the `B`/`E`
/// event pair in this thread's trace buffer.
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct SpanGuard {
    name: &'static str,
    /// `None` when both metrics and tracing were disabled at open time:
    /// the guard is then a complete no-op (no clock read).
    start: Option<Instant>,
    bytes: u64,
    traced: bool,
}

impl SpanGuard {
    /// Attribute additional bytes to this span instance.
    pub fn add_bytes(&mut self, n: u64) {
        self.bytes += n;
    }
}

/// Open a span; see [`span!`](crate::span!).
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    let metrics = crate::metrics_enabled();
    let traced = crate::trace_enabled();
    if !metrics && !traced {
        return SpanGuard {
            name,
            start: None,
            bytes: 0,
            traced: false,
        };
    }
    if traced {
        crate::trace::record_event(name, b'B', 0);
    }
    SpanGuard {
        name,
        start: Some(Instant::now()),
        bytes: 0,
        traced,
    }
}

/// Open a span with an initial byte attribution.
#[inline]
pub fn span_with_bytes(name: &'static str, bytes: u64) -> SpanGuard {
    let mut g = span(name);
    g.bytes = bytes;
    g
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let nanos = start.elapsed().as_nanos() as u64;
        if crate::metrics_enabled() {
            crate::registry::record_span(self.name, nanos, self.bytes);
        }
        if self.traced {
            crate::trace::record_event(self.name, b'E', self.bytes);
        }
    }
}
