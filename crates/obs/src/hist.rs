//! Log-bucketed latency histograms (HDR-style).
//!
//! Values are bucketed by their power-of-2 **major** with
//! `2^SUB_BITS` linear **sub-buckets** per major: values below
//! `2^SUB_BITS` land in exact single-value buckets, and every larger
//! bucket has width `2^(major - SUB_BITS)`, so the bucket containing a
//! value `v` is never wider than `v / 2^SUB_BITS`. Quantile estimates
//! return the bucket midpoint, bounding the relative error by
//! `2^-(SUB_BITS+1)` (~1.6% at `SUB_BITS = 5`) plus integer rounding.
//!
//! The bucket index is branch-free arithmetic on `leading_zeros`, and
//! counts live in a lazily grown `Vec<u64>` (nanosecond values up to
//! ~10 s need fewer than a thousand buckets), so recording into a
//! histogram costs one index computation and one slot increment — cheap
//! enough to hang off every `span!` drop.
//!
//! Histograms are sharded per thread exactly like counters (see
//! `registry`): each shard owns a `name → Histogram` map, dying threads
//! fold theirs into the retired accumulator, and [`Histogram::merge`]
//! is exact (bucket-wise addition), so snapshot quantiles see every
//! recorded value exactly once.

/// Linear sub-bucket resolution: `2^SUB_BITS` sub-buckets per
/// power-of-2 major.
pub const SUB_BITS: u32 = 5;
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Index of the bucket containing `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        v as usize
    } else {
        let major = 63 - v.leading_zeros() as u64; // >= SUB_BITS
        let sub = (v >> (major - SUB_BITS as u64)) & (SUB_COUNT - 1);
        ((major - SUB_BITS as u64 + 1) * SUB_COUNT + sub) as usize
    }
}

/// Lowest value that lands in bucket `i`.
#[inline]
fn bucket_lower(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_COUNT {
        i
    } else {
        let major_off = i / SUB_COUNT; // 1-based offset above the linear region
        let sub = i % SUB_COUNT;
        (SUB_COUNT + sub) << (major_off - 1)
    }
}

/// Width of bucket `i` (1 in the exact region, `2^(major - SUB_BITS)`
/// above it).
#[inline]
fn bucket_width(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_COUNT {
        1
    } else {
        1 << (i / SUB_COUNT - 1)
    }
}

/// A log-bucketed histogram of `u64` values (typically nanoseconds).
///
/// Supports exact [`merge`](Self::merge), bucket-wise
/// [`delta_since`](Self::delta_since), and quantile estimation with
/// bounded relative error.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket counts, grown lazily to the highest touched index.
    counts: Vec<u64>,
    count: u64,
    /// Sum of recorded values (saturating).
    total: u64,
    /// Largest recorded value (exact, not bucket-rounded).
    max: u64,
}

impl Histogram {
    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let i = bucket_index(v);
        if self.counts.len() <= i {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact bucket-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (slot, &c) in self.counts.iter_mut().zip(&other.counts) {
            *slot += c;
        }
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
        self.max = self.max.max(other.max);
    }

    /// Bucket-wise difference since `earlier` (which must be an earlier
    /// view of the same accumulating histogram). `max` keeps the
    /// cumulative value — extrema don't subtract.
    pub fn delta_since(&self, earlier: &Histogram) -> Histogram {
        let counts = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| c.saturating_sub(earlier.counts.get(i).copied().unwrap_or(0)))
            .collect();
        Histogram {
            counts,
            count: self.count.saturating_sub(earlier.count),
            total: self.total.saturating_sub(earlier.total),
            max: self.max,
        }
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`): the midpoint of the
    /// bucket holding the value of rank `ceil(q * count)`. Returns 0
    /// for an empty histogram. Relative error is bounded by
    /// `2^-(SUB_BITS+1)` plus integer rounding.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid = bucket_lower(i) + bucket_width(i) / 2;
                // Never report beyond the observed maximum.
                return mid.min(self.max);
            }
        }
        self.max
    }

    /// Iterate non-empty buckets as `(upper_bound_inclusive, count)`,
    /// in increasing bound order — the shape Prometheus exposition and
    /// the flight dump serialize.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower(i) + bucket_width(i) - 1, c))
    }
}

/// The standard quantile summary every span key gains in a snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Quantiles {
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    /// Exact observed maximum.
    pub max: u64,
}

impl Quantiles {
    pub(crate) fn from_hist(h: &Histogram) -> Quantiles {
        Quantiles {
            p50: h.quantile(0.50),
            p90: h.quantile(0.90),
            p99: h.quantile(0.99),
            max: h.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_ordered() {
        // Every value maps into a bucket whose [lower, lower+width)
        // range contains it, and indices are monotone in the value.
        let mut probes: Vec<u64> = (0..40u64)
            .flat_map(|shift| [0u64, 1, 3].map(|off| (1u64 << shift) + off))
            .collect();
        probes.sort_unstable();
        let mut prev = 0usize;
        for v in probes {
            let i = bucket_index(v);
            let lo = bucket_lower(i);
            let w = bucket_width(i);
            assert!(lo <= v && v < lo + w, "v={v} i={i} lo={lo} w={w}");
            assert!(i >= prev, "index not monotone at v={v}");
            prev = i;
        }
    }

    #[test]
    fn exact_region_is_exact() {
        let mut h = Histogram::default();
        for v in 0..SUB_COUNT {
            h.record(v);
        }
        for (i, (upper, count)) in h.buckets().enumerate() {
            assert_eq!(upper, i as u64);
            assert_eq!(count, 1);
        }
    }

    #[test]
    fn quantile_of_uniform_values() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1k..1M, spread over many majors
        }
        for (q, exact) in [(0.5, 500_000u64), (0.9, 900_000), (0.99, 990_000)] {
            let est = h.quantile(q);
            let err = est.abs_diff(exact);
            assert!(
                err as f64 <= exact as f64 / 32.0 + 1.0,
                "q={q}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.buckets().count(), 0);
    }
}
