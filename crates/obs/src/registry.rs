//! The sharded metrics registry.
//!
//! Counters and span statistics live in **per-thread shards**: the hot
//! path locks only the calling thread's own mutex (uncontended except
//! while a snapshot is being taken), so concurrent workers never fight
//! over a shared line. [`snapshot`] merges every live shard plus the
//! *retired* accumulator into which a dying thread folds its shard —
//! the rayon shim's scoped threads live for one parallel loop, so
//! retirement must be loss-free. Gauges are low-frequency (tier
//! residency, queue depth) and live in one global map keyed by owned
//! strings, which is what lets per-instance keys like
//! `membudget.resident.hot#3` exist.

use crate::hist::{Histogram, Quantiles};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Aggregated timing statistics of one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Completed span instances.
    pub count: u64,
    /// Summed durations in nanoseconds.
    pub total_nanos: u64,
    /// Shortest instance (0 when `count == 0`).
    pub min_nanos: u64,
    /// Longest instance.
    pub max_nanos: u64,
    /// Summed `bytes` attributes.
    pub total_bytes: u64,
}

impl SpanStats {
    pub(crate) fn record(&mut self, nanos: u64, bytes: u64) {
        self.min_nanos = if self.count == 0 {
            nanos
        } else {
            self.min_nanos.min(nanos)
        };
        self.count += 1;
        self.total_nanos += nanos;
        self.max_nanos = self.max_nanos.max(nanos);
        self.total_bytes += bytes;
    }

    fn merge(&mut self, other: &SpanStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.total_nanos += other.total_nanos;
        self.min_nanos = self.min_nanos.min(other.min_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
        self.total_bytes += other.total_bytes;
    }

    /// Difference of the additive fields since `earlier`; `min`/`max`
    /// keep the cumulative values (extrema don't subtract).
    fn delta_since(&self, earlier: &SpanStats) -> SpanStats {
        SpanStats {
            count: self.count.saturating_sub(earlier.count),
            total_nanos: self.total_nanos.saturating_sub(earlier.total_nanos),
            min_nanos: self.min_nanos,
            max_nanos: self.max_nanos,
            total_bytes: self.total_bytes.saturating_sub(earlier.total_bytes),
        }
    }
}

#[derive(Default)]
pub(crate) struct ShardData {
    counters: HashMap<&'static str, u64>,
    spans: HashMap<&'static str, SpanStats>,
    /// Latency/value histograms, sharded and retired exactly like
    /// counters so bucket merges are exact.
    hists: HashMap<&'static str, Histogram>,
}

impl ShardData {
    fn merge(&mut self, other: &ShardData) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, v) in &other.spans {
            self.spans.entry(k).or_default().merge(v);
        }
        for (&k, v) in &other.hists {
            self.hists.entry(k).or_default().merge(v);
        }
    }
}

/// A gauge is the current level plus a high-water mark since the last
/// [`gauge_peak_take`] — the watermark is what lets a per-step report
/// see e.g. the peak pool queue depth inside the step.
#[derive(Clone, Copy)]
struct GaugeCell {
    value: i64,
    peak: i64,
}

struct Global {
    /// Live per-thread shards (registered on first use per thread).
    shards: Mutex<Vec<Arc<Mutex<ShardData>>>>,
    /// Merged shards of threads that have exited.
    retired: Mutex<ShardData>,
    gauges: Mutex<HashMap<String, GaugeCell>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoning panic can only originate outside our critical
    // sections (they don't call user code); recover the data.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn global() -> &'static Global {
    static G: OnceLock<Global> = OnceLock::new();
    G.get_or_init(|| Global {
        shards: Mutex::new(Vec::new()),
        retired: Mutex::new(ShardData::default()),
        gauges: Mutex::new(HashMap::new()),
    })
}

/// Owns this thread's shard registration; the `Drop` runs at thread
/// exit and folds the shard into the retired accumulator so its counts
/// survive the thread.
struct ThreadShard {
    data: Arc<Mutex<ShardData>>,
}

impl Drop for ThreadShard {
    fn drop(&mut self) {
        let g = global();
        // Hold the shard list while merging so a concurrent snapshot
        // sees the counts exactly once (still live, or already retired).
        let mut shards = lock(&g.shards);
        {
            let data = lock(&self.data);
            lock(&g.retired).merge(&data);
        }
        shards.retain(|s| !Arc::ptr_eq(s, &self.data));
    }
}

thread_local! {
    static SHARD: ThreadShard = {
        let data = Arc::new(Mutex::new(ShardData::default()));
        lock(&global().shards).push(Arc::clone(&data));
        ThreadShard { data }
    };
}

fn with_shard<F: FnOnce(&mut ShardData)>(f: F) {
    match SHARD.try_with(|s| Arc::clone(&s.data)) {
        Ok(data) => f(&mut lock(&data)),
        // TLS already destroyed (thread teardown): write through the
        // retired accumulator so nothing is lost.
        Err(_) => f(&mut lock(&global().retired)),
    }
}

pub(crate) fn record_span(name: &'static str, nanos: u64, bytes: u64) {
    let hist = crate::hist_enabled();
    with_shard(|d| {
        d.spans.entry(name).or_default().record(nanos, bytes);
        if hist {
            d.hists.entry(name).or_default().record(nanos);
        }
    });
}

/// Record a value into the named histogram directly — for distributions
/// that aren't span durations (e.g. modeled wire nanos per message).
/// Keys share the namespace with span histograms; pick distinct names.
pub fn hist_record(name: &'static str, v: u64) {
    if !crate::metrics_enabled() || !crate::hist_enabled() {
        return;
    }
    with_shard(|d| d.hists.entry(name).or_default().record(v));
}

/// Add `v` to the named monotonic counter (no-op when metrics are
/// disabled). Keys are `&'static str` by design: hot paths pay one
/// thread-local map update, no allocation.
pub fn counter_add(name: &'static str, v: u64) {
    if v == 0 || !crate::metrics_enabled() {
        return;
    }
    with_shard(|d| *d.counters.entry(name).or_insert(0) += v);
}

/// Add a (possibly negative) delta to a gauge. Gauges are global —
/// deltas from many owners sum naturally (e.g. resident bytes across
/// several arenas).
pub fn gauge_add(name: &str, delta: i64) {
    if delta == 0 || !crate::metrics_enabled() {
        return;
    }
    let mut g = lock(&global().gauges);
    match g.get_mut(name) {
        Some(cell) => {
            cell.value += delta;
            cell.peak = cell.peak.max(cell.value);
        }
        None => {
            g.insert(
                name.to_string(),
                GaugeCell {
                    value: delta,
                    peak: delta.max(0),
                },
            );
        }
    }
}

/// Set a gauge to an absolute value.
pub fn gauge_set(name: &str, v: i64) {
    if !crate::metrics_enabled() {
        return;
    }
    let mut g = lock(&global().gauges);
    match g.get_mut(name) {
        Some(cell) => {
            cell.value = v;
            cell.peak = cell.peak.max(v);
        }
        None => {
            g.insert(name.to_string(), GaugeCell { value: v, peak: v });
        }
    }
}

/// Return the gauge's high-water mark since the previous take (or since
/// creation) and reset the watermark to the current value. Returns the
/// current value for a gauge that was never pushed above it, and 0 for
/// an absent gauge. The watermark is global per name: concurrent takers
/// split the peaks between them.
pub fn gauge_peak_take(name: &str) -> i64 {
    let mut g = lock(&global().gauges);
    match g.get_mut(name) {
        Some(cell) => {
            let peak = cell.peak;
            cell.peak = cell.value;
            peak
        }
        None => 0,
    }
}

/// Remove a gauge (instance-keyed gauges call this from `Drop` so dead
/// instances don't clutter snapshots).
pub fn gauge_remove(name: &str) {
    lock(&global().gauges).remove(name);
}

/// Current value of a gauge straight from the registry (0 when absent).
pub fn gauge_value(name: &str) -> i64 {
    lock(&global().gauges).get(name).map_or(0, |c| c.value)
}

/// Process-unique id for instance-keyed gauge names
/// (`membudget.resident.hot#<id>`).
pub fn next_instance_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// A merged, point-in-time view of the whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    counters: BTreeMap<String, u64>,
    spans: BTreeMap<String, SpanStats>,
    gauges: BTreeMap<String, i64>,
    hists: BTreeMap<String, Histogram>,
}

impl Snapshot {
    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Aggregated statistics of a span name (zeroed when never opened).
    pub fn span_stats(&self, name: &str) -> SpanStats {
        self.spans.get(name).copied().unwrap_or_default()
    }

    /// Total nanoseconds spent inside a span name.
    pub fn nanos(&self, name: &str) -> u64 {
        self.span_stats(name).total_nanos
    }

    /// Current value of a gauge (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Sum of every gauge whose key starts with `prefix` — the
    /// aggregate view over instance-keyed gauges.
    pub fn gauge_prefix_sum(&self, prefix: &str) -> i64 {
        self.gauges
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Iterate all counters (sorted by name).
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterate all span statistics (sorted by name).
    pub fn spans(&self) -> impl Iterator<Item = (&str, SpanStats)> {
        self.spans.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterate all gauges (sorted by name).
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// The histogram recorded under `name` — every span key has one
    /// (while histograms are enabled), plus explicit
    /// [`hist_record`] value histograms like `dist.wire`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Iterate all histograms (sorted by name).
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// p50/p90/p99/max of the named histogram, or `None` when nothing
    /// was recorded under that key.
    pub fn quantiles(&self, name: &str) -> Option<Quantiles> {
        let h = self.hists.get(name)?;
        (h.count() > 0).then(|| Quantiles::from_hist(h))
    }

    /// Monotonic difference since `earlier`: counters and span
    /// count/total/bytes subtract; gauges keep this snapshot's values
    /// (a gauge is a level, not a rate). Entries whose delta is zero
    /// are dropped.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(k, &v)| {
                let d = v.saturating_sub(earlier.counter(k));
                (d > 0).then(|| (k.clone(), d))
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .filter_map(|(k, v)| {
                let d = v.delta_since(&earlier.span_stats(k));
                (d.count > 0 || d.total_nanos > 0).then(|| (k.clone(), d))
            })
            .collect();
        let hists = self
            .hists
            .iter()
            .filter_map(|(k, v)| {
                let d = match earlier.hists.get(k) {
                    Some(e) => v.delta_since(e),
                    None => v.clone(),
                };
                (d.count() > 0).then(|| (k.clone(), d))
            })
            .collect();
        Snapshot {
            counters,
            spans,
            gauges: self.gauges.clone(),
            hists,
        }
    }
}

/// Merge every live shard, the retired accumulator, and the gauge map
/// into one consistent [`Snapshot`].
pub fn snapshot() -> Snapshot {
    let g = global();
    let mut agg = ShardData::default();
    {
        let shards = lock(&g.shards);
        agg.merge(&lock(&g.retired));
        for s in shards.iter() {
            agg.merge(&lock(s));
        }
    }
    let gauges = lock(&g.gauges)
        .iter()
        .map(|(k, c)| (k.clone(), c.value))
        .collect();
    Snapshot {
        counters: agg
            .counters
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        spans: agg
            .spans
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        gauges,
        hists: agg
            .hists
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    }
}
