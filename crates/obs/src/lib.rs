//! # ebtrain-obs
//!
//! The observability substrate for the whole workspace: one **metrics
//! registry** (counters, gauges, span timings), one **scoped-span**
//! primitive, and one **chrome-trace exporter** — always compiled in,
//! cheap enough to leave on, and a near-no-op when disabled.
//!
//! Three design points (DESIGN.md §9 has the full rationale):
//!
//! * **Thread-local shards.** Counter and span updates land in a shard
//!   owned by the calling thread, so `ebtrain-pool` workers and the
//!   rayon-shim's scoped threads never contend on a shared lock in the
//!   hot path. [`snapshot`] merges every live shard plus a *retired*
//!   accumulator that absorbs shards of threads that have exited (the
//!   rayon shim spawns short-lived scoped threads per parallel loop, so
//!   retirement is the common case, and no count is ever lost).
//! * **Spans are RAII guards.** [`span!`]`("sz.compress", bytes = n)`
//!   returns a guard; dropping it records duration + byte attribution
//!   into the registry and, when tracing is on, a `B`/`E` event pair
//!   into the calling thread's trace buffer. Span names follow the
//!   `crate.operation` convention. When both metrics and tracing are
//!   disabled the guard costs two relaxed atomic loads and skips the
//!   clock read entirely.
//! * **Enablement.** Metrics are **on by default** (`EBTRAIN_METRICS=0`
//!   disables); trace collection is **opt-in** via `EBTRAIN_TRACE=<path>`
//!   and flushed by [`flush_trace`] at the end of the fig binaries.
//!   [`set_metrics_enabled`] / [`set_trace_enabled`] override both
//!   programmatically (the overhead bench flips them per arm).

pub mod flight;
pub mod hist;
mod json_mod;
pub mod netutil;
mod registry;
mod report;
pub mod serve;
mod span;
mod trace;

pub use flight::{flight_records, flight_step, flush_flight, install_panic_hook, FlightRecord};
pub use hist::{Histogram, Quantiles};
pub use registry::{
    counter_add, gauge_add, gauge_peak_take, gauge_remove, gauge_set, gauge_value, hist_record,
    next_instance_id, snapshot, Snapshot, SpanStats,
};
pub use report::StepReport;
pub use span::{span, span_with_bytes, SpanGuard};
pub use trace::{clear_trace, flush_trace, trace_env_path, write_trace, write_trace_to};

/// Minimal JSON value/parser used by the trace checker and the exporter
/// tests (the workspace has no serde).
pub mod json {
    pub use crate::json_mod::{parse, Value};
}

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

// 0 = uninitialized (read env on first use), 1 = enabled, 2 = disabled.
static METRICS_STATE: AtomicU8 = AtomicU8::new(0);
static TRACE_STATE: AtomicU8 = AtomicU8::new(0);
static HIST_STATE: AtomicU8 = AtomicU8::new(0);

fn read_state(state: &AtomicU8, init: fn() -> bool) -> bool {
    match state.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = init();
            // Racing initializers compute the same env-derived value.
            state.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// True when metric recording is active (default; `EBTRAIN_METRICS=0`
/// or [`set_metrics_enabled`]`(false)` turns it off).
#[inline]
pub fn metrics_enabled() -> bool {
    read_state(&METRICS_STATE, || {
        !matches!(
            std::env::var("EBTRAIN_METRICS").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        )
    })
}

/// True when span events are being collected for the chrome-trace
/// exporter (off unless `EBTRAIN_TRACE=<path>` is set or
/// [`set_trace_enabled`]`(true)` was called).
#[inline]
pub fn trace_enabled() -> bool {
    read_state(&TRACE_STATE, || {
        trace_env_path_raw().map(|p| !p.is_empty()).unwrap_or(false)
    })
}

/// True when span drops also feed latency histograms (default;
/// `EBTRAIN_HIST=0` or [`set_hist_enabled`]`(false)` turns it off while
/// keeping plain span stats). Only consulted when metrics are enabled.
#[inline]
pub fn hist_enabled() -> bool {
    read_state(&HIST_STATE, || {
        !matches!(
            std::env::var("EBTRAIN_HIST").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        )
    })
}

/// Programmatically enable/disable metric recording (overrides the env).
pub fn set_metrics_enabled(on: bool) {
    METRICS_STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Programmatically enable/disable histogram feeding (overrides the
/// env; the overhead bench flips this per arm).
pub fn set_hist_enabled(on: bool) {
    HIST_STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Programmatically enable/disable trace collection (overrides the env).
pub fn set_trace_enabled(on: bool) {
    TRACE_STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

pub(crate) fn trace_env_path_raw() -> Option<&'static str> {
    static PATH: OnceLock<Option<String>> = OnceLock::new();
    PATH.get_or_init(|| std::env::var("EBTRAIN_TRACE").ok())
        .as_deref()
}

/// One-call env-driven setup for binaries: installs the flight-dump
/// panic hook and, when `EBTRAIN_METRICS_ADDR` is set, starts a
/// process-lifetime [`serve::MetricsServer`]. Returns the endpoint
/// address when one is listening (for self-probes). Idempotent.
pub fn init_from_env() -> Option<std::net::SocketAddr> {
    flight::install_panic_hook();
    static SERVER: OnceLock<Option<serve::MetricsServer>> = OnceLock::new();
    SERVER
        .get_or_init(serve::serve_from_env)
        .as_ref()
        .map(|s| s.addr())
}

/// Open a scoped timing span: `span!("crate.operation")` or
/// `span!("crate.operation", bytes = n)`. Returns a [`SpanGuard`];
/// duration (and the byte attribute) are recorded when it drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, bytes = $bytes:expr) => {
        $crate::span_with_bytes($name, $bytes as u64)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_delta() {
        set_metrics_enabled(true);
        let before = snapshot();
        counter_add("obs.test.counter_a", 3);
        counter_add("obs.test.counter_a", 4);
        let d = snapshot().delta_since(&before);
        assert_eq!(d.counter("obs.test.counter_a"), 7);
        assert_eq!(d.counter("obs.test.never_touched"), 0);
    }

    #[test]
    fn spans_record_duration_and_bytes() {
        set_metrics_enabled(true);
        let before = snapshot();
        {
            let _g = span!("obs.test.span_a", bytes = 128);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let d = snapshot().delta_since(&before);
        let st = d.span_stats("obs.test.span_a");
        assert_eq!(st.count, 1);
        assert!(st.total_nanos >= 1_000_000, "span too short: {st:?}");
        assert_eq!(st.total_bytes, 128);
    }

    #[test]
    fn gauges_set_add_remove() {
        set_metrics_enabled(true);
        gauge_set("obs.test.gauge#1", 10);
        gauge_add("obs.test.gauge#1", -3);
        gauge_set("obs.test.gauge#2", 5);
        let s = snapshot();
        assert_eq!(s.gauge("obs.test.gauge#1"), 7);
        assert_eq!(s.gauge_prefix_sum("obs.test.gauge"), 12);
        gauge_remove("obs.test.gauge#1");
        gauge_remove("obs.test.gauge#2");
        assert_eq!(snapshot().gauge("obs.test.gauge#1"), 0);
    }

    #[test]
    fn shards_from_dead_threads_survive() {
        set_metrics_enabled(true);
        let before = snapshot();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..100 {
                        counter_add("obs.test.dead_thread", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let d = snapshot().delta_since(&before);
        assert_eq!(d.counter("obs.test.dead_thread"), 400);
    }

    #[test]
    fn instance_ids_are_unique() {
        let a = next_instance_id();
        let b = next_instance_id();
        assert_ne!(a, b);
    }
}
