//! A minimal JSON parser — just enough for the trace checker and the
//! exporter tests to validate emitted chrome-trace files without serde.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (insertion order preserved).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, when an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.pos) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Value::Str),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.b[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self
                .b
                .get(self.pos)
                .copied()
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self
                        .b
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => {
                    // Re-scan as UTF-8 from this byte.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.b.len() && self.b[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.b[start..end])
                        .map_err(|_| self.err("bad utf8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a complete JSON document.
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser {
        b: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(
            r#"[{"name":"sz.compress","ph":"B","tid":3,"ts":12.5,"ok":true,"x":null},
                {"args":{"bytes":1048576},"neg":-2.5e3,"s":"a\"b\\cA"}]"#,
        )
        .unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("name").unwrap().as_str(), Some("sz.compress"));
        assert_eq!(arr[0].get("ts").unwrap().as_f64(), Some(12.5));
        assert_eq!(arr[0].get("x"), Some(&Value::Null));
        assert_eq!(
            arr[1].get("args").unwrap().get("bytes").unwrap().as_f64(),
            Some(1048576.0)
        );
        assert_eq!(arr[1].get("neg").unwrap().as_f64(), Some(-2500.0));
        assert_eq!(arr[1].get("s").unwrap().as_str(), Some("a\"b\\cA"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1] trailing").is_err());
    }
}
