//! The per-step flight recorder: a fixed-capacity ring of step records
//! with online anomaly detection and a crash dump.
//!
//! Both trainers push one [`FlightRecord`] per step ([`flight_step`]):
//! the step's loss, wall time, communicated bytes, compression ratio,
//! and pool queue-depth peak. Records are cheap (one short mutex hold
//! per *step*, not per operation), so the recorder is always on while
//! metrics are.
//!
//! **Anomaly detection.** Per `source` key ("core.step", "dist.step" —
//! a distributed step nests its replicas' core steps, so streams must
//! not contaminate each other), EWMA estimators track loss mean and
//! variance, step-time mean, and compression-ratio mean. After a short
//! warm-up, a record trips
//! * `loss_spike` — loss z-score above [`LOSS_Z_THRESHOLD`] (the
//!   deviation floor keeps tiny-variance streams from firing on
//!   noise),
//! * `step_time` — step wall time above [`TIME_FACTOR`]× the EWMA mean,
//! * `ratio_collapse` — compression ratio below [`RATIO_FACTOR`]× an
//!   EWMA mean that had been ≥ 1.5 (a stream that never compressed
//!   can't collapse).
//!
//! Each trip bumps an `obs.anomaly.*` counter and marks the ring entry,
//! so a live `/metrics` scrape and a post-mortem dump both see it.
//!
//! **Dumps.** [`write_flight`] serializes the ring plus a full registry
//! snapshot (counters, gauges, span stats with histogram quantiles, and
//! raw histogram buckets) as JSON parseable by [`crate::json`].
//! [`flush_flight`] writes it to `EBTRAIN_FLIGHT=<path>` at normal exit
//! (fig binaries), [`install_panic_hook`] does the same on panic, and
//! the distributed collective dumps on poisoning — the last N steps
//! before a failure are exactly what a post-mortem needs.

use crate::hist::Quantiles;
use crate::trace::escape_json;
use std::collections::VecDeque;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, Once, OnceLock};

/// Default ring capacity (records, not bytes).
pub const DEFAULT_CAPACITY: usize = 512;

/// Anomaly flag: loss z-score spike.
pub const ANOMALY_LOSS_SPIKE: u8 = 1 << 0;
/// Anomaly flag: step-time regression.
pub const ANOMALY_STEP_TIME: u8 = 1 << 1;
/// Anomaly flag: compression-ratio collapse.
pub const ANOMALY_RATIO_COLLAPSE: u8 = 1 << 2;

/// Loss z-score threshold for `loss_spike`.
pub const LOSS_Z_THRESHOLD: f64 = 4.0;
/// Step-time multiple of the EWMA mean for `step_time`.
pub const TIME_FACTOR: f64 = 3.0;
/// Ratio fraction of the EWMA mean for `ratio_collapse`.
pub const RATIO_FACTOR: f64 = 0.5;
/// Records per source before detectors may fire.
const WARMUP: u64 = 5;
/// EWMA smoothing factor.
const ALPHA: f64 = 0.2;

/// One step's entry in the flight ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightRecord {
    /// Detector stream key: `"core.step"` or `"dist.step"`.
    pub source: &'static str,
    /// Trainer iteration index.
    pub step: u64,
    pub loss: f64,
    /// Wall time of the step.
    pub step_nanos: u64,
    /// Collective payload bytes moved this step (0 for local training).
    pub comm_bytes: u64,
    /// Store (core) or comm (dist) compression ratio.
    pub compression_ratio: f64,
    /// High-water mark of `pool.queue_depth` during the step.
    pub queue_depth_peak: i64,
    /// OR of `ANOMALY_*` flags tripped by this record.
    pub anomalies: u8,
}

impl FlightRecord {
    /// Human-readable names of the tripped anomaly flags.
    pub fn anomaly_names(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.anomalies & ANOMALY_LOSS_SPIKE != 0 {
            out.push("loss_spike");
        }
        if self.anomalies & ANOMALY_STEP_TIME != 0 {
            out.push("step_time");
        }
        if self.anomalies & ANOMALY_RATIO_COLLAPSE != 0 {
            out.push("ratio_collapse");
        }
        out
    }
}

/// EWMA state for one source stream.
#[derive(Default)]
struct Detector {
    n: u64,
    loss_mean: f64,
    loss_var: f64,
    time_mean: f64,
    ratio_mean: f64,
}

impl Detector {
    /// Check `rec` against the learned baseline, then fold it in.
    /// Returns the tripped `ANOMALY_*` flags.
    fn observe(&mut self, rec: &FlightRecord) -> u8 {
        let mut flags = 0u8;
        let warm = self.n >= WARMUP;
        if warm && rec.loss.is_finite() {
            // Deviation floor: 5% of the mean keeps near-constant loss
            // streams from flagging measurement noise.
            let sigma = self.loss_var.max(0.0).sqrt();
            let floor = self.loss_mean.abs() * 0.05 + 1e-12;
            let z = (rec.loss - self.loss_mean) / sigma.max(floor);
            if z > LOSS_Z_THRESHOLD {
                flags |= ANOMALY_LOSS_SPIKE;
            }
        }
        if warm && self.time_mean > 0.0 && (rec.step_nanos as f64) > TIME_FACTOR * self.time_mean {
            flags |= ANOMALY_STEP_TIME;
        }
        if warm
            && self.ratio_mean >= 1.5
            && rec.compression_ratio.is_finite()
            && rec.compression_ratio < RATIO_FACTOR * self.ratio_mean
        {
            flags |= ANOMALY_RATIO_COLLAPSE;
        }

        if rec.loss.is_finite() {
            if self.n == 0 {
                self.loss_mean = rec.loss;
            } else {
                let d = rec.loss - self.loss_mean;
                self.loss_mean += ALPHA * d;
                self.loss_var = (1.0 - ALPHA) * (self.loss_var + ALPHA * d * d);
            }
        }
        let t = rec.step_nanos as f64;
        self.time_mean = if self.n == 0 {
            t
        } else {
            self.time_mean + ALPHA * (t - self.time_mean)
        };
        if rec.compression_ratio.is_finite() {
            self.ratio_mean = if self.n == 0 {
                rec.compression_ratio
            } else {
                self.ratio_mean + ALPHA * (rec.compression_ratio - self.ratio_mean)
            };
        }
        self.n += 1;
        flags
    }
}

struct FlightState {
    ring: VecDeque<FlightRecord>,
    capacity: usize,
    /// One detector per source stream. Sources are a closed set of
    /// static names, so a Vec beats a HashMap at this size.
    detectors: Vec<(&'static str, Detector)>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn state() -> &'static Mutex<FlightState> {
    static S: OnceLock<Mutex<FlightState>> = OnceLock::new();
    S.get_or_init(|| {
        Mutex::new(FlightState {
            ring: VecDeque::with_capacity(DEFAULT_CAPACITY),
            capacity: DEFAULT_CAPACITY,
            detectors: Vec::new(),
        })
    })
}

/// Record one training step. Runs the source's anomaly detectors,
/// bumps `obs.anomaly.*` counters for anything tripped, stores the
/// (flagged) record in the ring, and returns the tripped flags.
/// No-op (returns 0) while metrics are disabled.
pub fn flight_step(mut rec: FlightRecord) -> u8 {
    if !crate::metrics_enabled() {
        return 0;
    }
    let flags = {
        let mut s = lock(state());
        let det = match s.detectors.iter().position(|(k, _)| *k == rec.source) {
            Some(i) => &mut s.detectors[i].1,
            None => {
                s.detectors.push((rec.source, Detector::default()));
                &mut s.detectors.last_mut().expect("just pushed").1
            }
        };
        let flags = det.observe(&rec);
        rec.anomalies = flags;
        while s.ring.len() >= s.capacity {
            s.ring.pop_front();
        }
        s.ring.push_back(rec);
        flags
    };
    // Counters are bumped outside the flight lock (counter_add takes
    // the shard lock; keep the two disjoint).
    if flags & ANOMALY_LOSS_SPIKE != 0 {
        crate::counter_add("obs.anomaly.loss_spike", 1);
    }
    if flags & ANOMALY_STEP_TIME != 0 {
        crate::counter_add("obs.anomaly.step_time", 1);
    }
    if flags & ANOMALY_RATIO_COLLAPSE != 0 {
        crate::counter_add("obs.anomaly.ratio_collapse", 1);
    }
    flags
}

/// The ring's current contents, oldest first.
pub fn flight_records() -> Vec<FlightRecord> {
    lock(state()).ring.iter().copied().collect()
}

/// Resize the ring (oldest records drop if shrinking). Test hook.
pub fn set_flight_capacity(capacity: usize) {
    let mut s = lock(state());
    s.capacity = capacity.max(1);
    while s.ring.len() > s.capacity {
        s.ring.pop_front();
    }
}

/// Drop every record and detector state. Test isolation hook.
pub fn clear_flight() {
    let mut s = lock(state());
    s.ring.clear();
    s.detectors.clear();
}

/// JSON fragment for an `f64` (finite → number, else `null` — JSON has
/// no NaN/Infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Serialize the flight ring plus a full registry snapshot as one JSON
/// object: `reason`, `steps` (ring, oldest first), `counters`,
/// `gauges`, `spans` (stats + p50/p90/p99 where a histogram exists),
/// and `hist` (raw `[upper_bound, count]` buckets). Parseable by
/// [`crate::json::parse`]; `flight_check` validates it in CI.
pub fn write_flight(w: &mut dyn Write, reason: &str) -> io::Result<()> {
    let records = flight_records();
    let snap = crate::snapshot();
    writeln!(w, "{{")?;
    writeln!(w, "\"reason\":\"{}\",", escape_json(reason))?;
    writeln!(w, "\"steps\":[")?;
    for (i, r) in records.iter().enumerate() {
        let names = r.anomaly_names();
        let anomalies = names
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(",");
        let sep = if i + 1 == records.len() { "" } else { "," };
        writeln!(
            w,
            "{{\"source\":\"{}\",\"step\":{},\"loss\":{},\"step_nanos\":{},\"comm_bytes\":{},\"ratio\":{},\"queue_depth_peak\":{},\"anomalies\":[{}]}}{}",
            escape_json(r.source),
            r.step,
            json_f64(r.loss),
            r.step_nanos,
            r.comm_bytes,
            json_f64(r.compression_ratio),
            r.queue_depth_peak,
            anomalies,
            sep
        )?;
    }
    writeln!(w, "],")?;

    let counters: Vec<String> = snap
        .counters()
        .map(|(k, v)| format!("\"{}\":{}", escape_json(k), v))
        .collect();
    writeln!(w, "\"counters\":{{{}}},", counters.join(","))?;
    let gauges: Vec<String> = snap
        .gauges()
        .map(|(k, v)| format!("\"{}\":{}", escape_json(k), v))
        .collect();
    writeln!(w, "\"gauges\":{{{}}},", gauges.join(","))?;

    writeln!(w, "\"spans\":{{")?;
    let spans: Vec<(&str, crate::SpanStats)> = snap.spans().collect();
    for (i, (name, st)) in spans.iter().enumerate() {
        let q = snap
            .quantiles(name)
            .map(|Quantiles { p50, p90, p99, .. }| {
                format!(",\"p50_nanos\":{p50},\"p90_nanos\":{p90},\"p99_nanos\":{p99}")
            })
            .unwrap_or_default();
        let sep = if i + 1 == spans.len() { "" } else { "," };
        writeln!(
            w,
            "\"{}\":{{\"count\":{},\"total_nanos\":{},\"min_nanos\":{},\"max_nanos\":{},\"total_bytes\":{}{}}}{}",
            escape_json(name),
            st.count,
            st.total_nanos,
            st.min_nanos,
            st.max_nanos,
            st.total_bytes,
            q,
            sep
        )?;
    }
    writeln!(w, "}},")?;

    writeln!(w, "\"hist\":{{")?;
    let hists: Vec<(&str, &crate::Histogram)> = snap.histograms().collect();
    for (i, (name, h)) in hists.iter().enumerate() {
        let buckets = h
            .buckets()
            .map(|(upper, count)| format!("[{upper},{count}]"))
            .collect::<Vec<_>>()
            .join(",");
        let sep = if i + 1 == hists.len() { "" } else { "," };
        writeln!(
            w,
            "\"{}\":{{\"count\":{},\"total\":{},\"max\":{},\"buckets\":[{}]}}{}",
            escape_json(name),
            h.count(),
            h.total(),
            h.max(),
            buckets,
            sep
        )?;
    }
    writeln!(w, "}}")?;
    writeln!(w, "}}")
}

/// Write the flight dump to a file path (creating/truncating it).
pub fn write_flight_to(path: &Path, reason: &str) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    write_flight(&mut w, reason)?;
    w.flush()
}

fn flight_env_path() -> Option<PathBuf> {
    static PATH: OnceLock<Option<String>> = OnceLock::new();
    PATH.get_or_init(|| std::env::var("EBTRAIN_FLIGHT").ok())
        .as_deref()
        .filter(|p| !p.is_empty())
        .map(PathBuf::from)
}

/// Dump to the `EBTRAIN_FLIGHT` path if one is set; returns the path
/// written. Failure paths (panic hook, poisoned collective) call this
/// with their reason — errors go to stderr, never propagate.
pub fn dump_flight(reason: &str) -> Option<PathBuf> {
    let path = flight_env_path()?;
    match write_flight_to(&path, reason) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!(
                "[obs] failed to write flight dump to {}: {e}",
                path.display()
            );
            None
        }
    }
}

/// Write the flight dump to the `EBTRAIN_FLIGHT` path at normal exit
/// (fig binaries call this at the end of `main`, next to
/// [`crate::flush_trace`]).
pub fn flush_flight() -> Option<PathBuf> {
    dump_flight("flush")
}

/// Install a panic hook (once; chains the previous hook) that dumps
/// the flight ring to `EBTRAIN_FLIGHT` before unwinding continues —
/// the last N steps are on disk even when the process dies.
pub fn install_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(path) = dump_flight("panic") {
                eprintln!("[obs] flight dump written to {}", path.display());
            }
            prev(info);
        }));
    });
}
