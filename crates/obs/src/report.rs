//! Per-step metric reports.

use crate::registry::{snapshot, Snapshot, SpanStats};

/// The registry delta captured around one training step — the single
/// source of truth the fig binaries print from. Note the registry is
/// process-global: in a multi-replica step the report covers **all**
/// replicas' activity during the window (which is exactly what a
/// per-step communication/codec breakdown wants).
#[derive(Debug, Clone, Default)]
pub struct StepReport {
    /// Registry delta over the step (counters/spans are per-step,
    /// gauges are end-of-step levels).
    pub metrics: Snapshot,
}

impl StepReport {
    /// Capture the delta between `before` and the registry's current
    /// state.
    pub fn capture_since(before: &Snapshot) -> StepReport {
        StepReport {
            metrics: snapshot().delta_since(before),
        }
    }

    /// Nanoseconds spent inside a span name during the step.
    pub fn nanos(&self, span: &str) -> u64 {
        self.metrics.nanos(span)
    }

    /// A counter's per-step increment.
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.counter(name)
    }

    /// A span's per-step statistics.
    pub fn span_stats(&self, span: &str) -> SpanStats {
        self.metrics.span_stats(span)
    }

    /// Compact human-readable lines for every span under the given
    /// name prefixes (e.g. `["sz.", "dist."]`), for fig-binary output.
    pub fn format_brief(&self, prefixes: &[&str]) -> String {
        let mut out = String::new();
        for (name, st) in self.metrics.spans() {
            if !prefixes.iter().any(|p| name.starts_with(p)) {
                continue;
            }
            out.push_str(&format!(
                "{name}: {}x {:.3} ms{}\n",
                st.count,
                st.total_nanos as f64 * 1e-6,
                if st.total_bytes > 0 {
                    format!(" {} B", st.total_bytes)
                } else {
                    String::new()
                }
            ));
        }
        for (name, v) in self.metrics.counters() {
            if !prefixes.iter().any(|p| name.starts_with(p)) {
                continue;
            }
            out.push_str(&format!("{name}: {v}\n"));
        }
        out
    }
}
