//! Integration tests for the observability layer: the chrome-trace
//! exporter (file round-trip through the crate's own JSON parser) and
//! an exact-sum property test for the sharded registry.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ebtrain_obs::{
    clear_trace, counter_add, json, set_metrics_enabled, set_trace_enabled, snapshot, span,
    write_trace,
};
use proptest::prelude::*;

/// Tests that flip the global trace switch or open spans (spans emit
/// trace events while it is on) serialize through this lock so the
/// exporter never observes another test's half-open span.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn leaked_name(prefix: &str) -> &'static str {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    Box::leak(format!("{prefix}#{id}").into_boxed_str())
}

#[test]
fn exporter_emits_valid_chrome_trace() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    set_metrics_enabled(true);
    set_trace_enabled(true);
    clear_trace();

    // A tiny multi-threaded workload with nested spans.
    {
        let mut g = ebtrain_obs::span_with_bytes("test.outer", 64);
        g.add_bytes(64);
        let handles: Vec<_> = (0..3)
            .map(|i| {
                std::thread::Builder::new()
                    .name(format!("obs-test-{i}"))
                    .spawn(|| {
                        for _ in 0..5 {
                            let _inner = span("test.worker");
                        }
                    })
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
    set_trace_enabled(false);

    let mut out = Vec::new();
    write_trace(&mut out).unwrap();
    clear_trace();
    let text = String::from_utf8(out).unwrap();
    let doc = json::parse(&text).expect("trace must be valid JSON");
    let events = doc.as_array().expect("trace must be a JSON array");
    assert!(!events.is_empty());

    // Validate every event, B/E pairing per (tid, name-stack), and
    // per-thread timestamp monotonicity.
    let mut stacks: HashMap<u64, Vec<&str>> = HashMap::new();
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    let mut durations = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph");
        let tid = ev.get("tid").and_then(|v| v.as_f64()).expect("tid");
        assert!(tid >= 1.0 && tid.fract() == 0.0, "invalid tid {tid}");
        let tid = tid as u64;
        let name = ev.get("name").and_then(|v| v.as_str()).expect("name");
        match ph {
            "M" => continue,
            "B" | "E" => {}
            other => panic!("unexpected phase {other:?}"),
        }
        let ts = ev.get("ts").and_then(|v| v.as_f64()).expect("ts");
        let prev = last_ts.entry(tid).or_insert(ts);
        assert!(ts >= *prev, "timestamps regress on tid {tid}");
        *prev = ts;
        if ph == "B" {
            stacks.entry(tid).or_default().push(name);
        } else {
            let open = stacks.get_mut(&tid).and_then(|s| s.pop());
            assert_eq!(open, Some(name), "E without matching B on tid {tid}");
            durations += 1;
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed spans {stack:?} on tid {tid}");
    }
    // 1 outer + 3 threads * 5 inner spans completed.
    assert!(
        durations >= 16,
        "expected >=16 closed spans, saw {durations}"
    );
    let names: Vec<_> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|v| v.as_str()))
        .collect();
    assert!(names.contains(&"test.outer"));
    assert!(names.contains(&"test.worker"));
    // The outer span's byte attribution rides on its E event.
    let outer_close = events
        .iter()
        .find(|e| {
            e.get("name").and_then(|v| v.as_str()) == Some("test.outer")
                && e.get("ph").and_then(|v| v.as_str()) == Some("E")
        })
        .expect("closing event for test.outer");
    assert_eq!(
        outer_close
            .get("args")
            .and_then(|a| a.get("bytes"))
            .and_then(|b| b.as_f64()),
        Some(128.0)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Increments racing across threads — including threads that exit
    /// before the snapshot — merge to the exact sum.
    #[test]
    fn concurrent_shard_increments_merge_exactly(
        per_thread in prop::collection::vec(prop::collection::vec(1u64..1000, 1..20), 1..8),
    ) {
        set_metrics_enabled(true);
        let name = leaked_name("obs.prop.sum");
        let before = snapshot();
        let expected: u64 = per_thread.iter().flatten().sum();
        let handles: Vec<_> = per_thread
            .into_iter()
            .map(|vals| {
                std::thread::spawn(move || {
                    for v in vals {
                        counter_add(name, v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let d = snapshot().delta_since(&before);
        prop_assert_eq!(d.counter(name), expected);
    }
}
