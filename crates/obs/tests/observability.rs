//! Integration tests for the observability layer: the chrome-trace
//! exporter (file round-trip through the crate's own JSON parser),
//! exact-sum/exact-merge property tests for the sharded registry and
//! its latency histograms, the flight recorder (ring wraparound and
//! anomaly detection), and the `/metrics` endpoint.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ebtrain_obs::flight::{
    clear_flight, flight_records, set_flight_capacity, ANOMALY_LOSS_SPIKE, ANOMALY_RATIO_COLLAPSE,
    ANOMALY_STEP_TIME, DEFAULT_CAPACITY,
};
use ebtrain_obs::{
    clear_trace, counter_add, flight_step, hist_record, json, serve, set_hist_enabled,
    set_metrics_enabled, set_trace_enabled, snapshot, span, write_trace, FlightRecord, Histogram,
};
use proptest::prelude::*;

/// Tests that flip the global trace switch or open spans (spans emit
/// trace events while it is on) serialize through this lock so the
/// exporter never observes another test's half-open span.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// The flight ring and its detectors are process-global; tests that
/// resize or clear them serialize through this lock.
static FLIGHT_LOCK: Mutex<()> = Mutex::new(());

fn leaked_name(prefix: &str) -> &'static str {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    Box::leak(format!("{prefix}#{id}").into_boxed_str())
}

#[test]
fn exporter_emits_valid_chrome_trace() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    set_metrics_enabled(true);
    set_trace_enabled(true);
    clear_trace();

    // A tiny multi-threaded workload with nested spans.
    {
        let mut g = ebtrain_obs::span_with_bytes("test.outer", 64);
        g.add_bytes(64);
        let handles: Vec<_> = (0..3)
            .map(|i| {
                std::thread::Builder::new()
                    .name(format!("obs-test-{i}"))
                    .spawn(|| {
                        for _ in 0..5 {
                            let _inner = span("test.worker");
                        }
                    })
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
    set_trace_enabled(false);

    let mut out = Vec::new();
    write_trace(&mut out).unwrap();
    clear_trace();
    let text = String::from_utf8(out).unwrap();
    let doc = json::parse(&text).expect("trace must be valid JSON");
    let events = doc.as_array().expect("trace must be a JSON array");
    assert!(!events.is_empty());

    // Validate every event, B/E pairing per (tid, name-stack), and
    // per-thread timestamp monotonicity.
    let mut stacks: HashMap<u64, Vec<&str>> = HashMap::new();
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    let mut durations = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph");
        let tid = ev.get("tid").and_then(|v| v.as_f64()).expect("tid");
        assert!(tid >= 1.0 && tid.fract() == 0.0, "invalid tid {tid}");
        let tid = tid as u64;
        let name = ev.get("name").and_then(|v| v.as_str()).expect("name");
        match ph {
            "M" => continue,
            "B" | "E" => {}
            other => panic!("unexpected phase {other:?}"),
        }
        let ts = ev.get("ts").and_then(|v| v.as_f64()).expect("ts");
        let prev = last_ts.entry(tid).or_insert(ts);
        assert!(ts >= *prev, "timestamps regress on tid {tid}");
        *prev = ts;
        if ph == "B" {
            stacks.entry(tid).or_default().push(name);
        } else {
            let open = stacks.get_mut(&tid).and_then(|s| s.pop());
            assert_eq!(open, Some(name), "E without matching B on tid {tid}");
            durations += 1;
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed spans {stack:?} on tid {tid}");
    }
    // 1 outer + 3 threads * 5 inner spans completed.
    assert!(
        durations >= 16,
        "expected >=16 closed spans, saw {durations}"
    );
    let names: Vec<_> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|v| v.as_str()))
        .collect();
    assert!(names.contains(&"test.outer"));
    assert!(names.contains(&"test.worker"));
    // The outer span's byte attribution rides on its E event.
    let outer_close = events
        .iter()
        .find(|e| {
            e.get("name").and_then(|v| v.as_str()) == Some("test.outer")
                && e.get("ph").and_then(|v| v.as_str()) == Some("E")
        })
        .expect("closing event for test.outer");
    assert_eq!(
        outer_close
            .get("args")
            .and_then(|a| a.get("bytes"))
            .and_then(|b| b.as_f64()),
        Some(128.0)
    );
}

fn flight_rec(source: &'static str, step: u64, loss: f64) -> FlightRecord {
    FlightRecord {
        source,
        step,
        loss,
        step_nanos: 1_000,
        comm_bytes: 0,
        compression_ratio: 1.0,
        queue_depth_peak: 0,
        anomalies: 0,
    }
}

#[test]
fn flight_ring_wraps_at_capacity() {
    let _guard = FLIGHT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    set_metrics_enabled(true);
    clear_flight();
    set_flight_capacity(8);
    let source = leaked_name("obs.test.flight.wrap");
    for step in 0..20u64 {
        // A bogus incoming flag must be overwritten by the detector.
        let mut rec = flight_rec(source, step, 1.0);
        rec.anomalies = 0xff;
        flight_step(rec);
    }
    let recs = flight_records();
    assert_eq!(recs.len(), 8, "ring must hold exactly its capacity");
    let steps: Vec<u64> = recs.iter().map(|r| r.step).collect();
    assert_eq!(steps, (12..20).collect::<Vec<_>>(), "oldest records evict");
    assert!(recs.iter().all(|r| r.source == source && r.anomalies == 0));
    set_flight_capacity(DEFAULT_CAPACITY);
    clear_flight();
}

#[test]
fn injected_loss_spike_trips_anomaly_detector() {
    let _guard = FLIGHT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    set_metrics_enabled(true);
    clear_flight();
    set_flight_capacity(DEFAULT_CAPACITY);
    let source = leaked_name("obs.test.flight.spike");
    let before = snapshot();
    // Steady warm-up: small loss wobble, constant step time and ratio.
    for step in 0..8u64 {
        let wobble = 1.0 + (step % 2) as f64 * 0.01;
        assert_eq!(flight_step(flight_rec(source, step, wobble)), 0);
    }
    // A 10x loss spike against the EWMA baseline.
    let flags = flight_step(flight_rec(source, 8, 10.0));
    assert_ne!(flags & ANOMALY_LOSS_SPIKE, 0, "loss spike must trip");
    assert_eq!(flags & (ANOMALY_STEP_TIME | ANOMALY_RATIO_COLLAPSE), 0);
    let d = snapshot().delta_since(&before);
    assert_eq!(d.counter("obs.anomaly.loss_spike"), 1);
    let marked = flight_records()
        .into_iter()
        .find(|r| r.source == source && r.step == 8)
        .expect("spike record in the ring");
    assert_eq!(marked.anomaly_names(), vec!["loss_spike"]);

    // A step-time regression on the same stream (loss back to normal-ish;
    // the detector folded the spike in, so 1.0 is within bounds).
    let mut slow = flight_rec(source, 9, 1.0);
    slow.step_nanos = 100_000;
    let flags = flight_step(slow);
    assert_ne!(flags & ANOMALY_STEP_TIME, 0, "3x step time must trip");
    assert_eq!(
        snapshot()
            .delta_since(&before)
            .counter("obs.anomaly.step_time"),
        1
    );
    clear_flight();
}

#[test]
fn spans_feed_latency_histograms() {
    set_metrics_enabled(true);
    set_hist_enabled(true);
    let name = leaked_name("obs.test.hist.span");
    let before = snapshot();
    for _ in 0..10 {
        let _g = span(name);
    }
    let d = snapshot().delta_since(&before);
    let h = d.histogram(name).expect("span key gains a histogram");
    assert_eq!(h.count(), d.span_stats(name).count);
    assert_eq!(h.count(), 10);
    let q = d.quantiles(name).expect("quantiles for recorded span");
    assert!(q.p50 <= q.p90 && q.p90 <= q.p99 && q.p99 <= q.max);
}

#[test]
fn metrics_endpoint_exposes_counters_and_histograms() {
    set_metrics_enabled(true);
    set_hist_enabled(true);
    let server = serve::serve("127.0.0.1:0").expect("bind ephemeral port");
    let counter = leaked_name("obs.test.endpoint.counter");
    let lat = leaked_name("obs.test.endpoint.lat");
    counter_add(counter, 7);
    for v in [100u64, 200, 400, 800, 1600] {
        hist_record(lat, v);
    }
    let snap = snapshot();

    let body = serve::fetch(server.addr(), "/metrics").expect("fetch /metrics");
    let series = serve::parse_exposition(&body).expect("exposition must parse");
    let get = |n: &str| series.iter().find(|(s, _)| s == n).map(|&(_, v)| v);
    // Same sanitization rule the exporter documents: ebtrain_ prefix,
    // non-[a-zA-Z0-9_:] characters become '_'.
    let sanitized = |key: &str| {
        let mut out = String::from("ebtrain_");
        out.extend(key.chars().map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        }));
        out
    };

    // Counter series cross-checked against the registry snapshot.
    let cname = format!("{}_total", sanitized(counter));
    assert_eq!(get(&cname), Some(snap.counter(counter) as f64));
    assert_eq!(get(&cname), Some(7.0));

    // Histogram series: +Inf bucket == _count == recorded count, and
    // _sum matches the snapshot's total.
    let h = snap.histogram(lat).expect("snapshot histogram");
    let hname = format!("{}_nanos", sanitized(lat));
    assert_eq!(get(&format!("{hname}_count")), Some(h.count() as f64));
    assert_eq!(get(&format!("{hname}_count")), Some(5.0));
    assert_eq!(get(&format!("{hname}_sum")), Some(3100.0));
    assert_eq!(
        get(&format!("{hname}_bucket{{le=\"+Inf\"}}")),
        Some(h.count() as f64)
    );

    // The flight-recorder report route serves crate-parseable JSON with
    // the same counter value.
    let report = serve::fetch(server.addr(), "/report.json").expect("fetch /report.json");
    let doc = json::parse(&report).expect("report must be valid JSON");
    for key in ["reason", "steps", "counters", "gauges", "spans", "hist"] {
        assert!(doc.get(key).is_some(), "report missing {key:?}");
    }
    assert_eq!(
        doc.get("counters")
            .and_then(|c| c.get(counter))
            .and_then(|v| v.as_f64()),
        Some(7.0)
    );

    assert!(serve::fetch(server.addr(), "/nope").is_err(), "404 route");
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Merging two histograms is exactly equivalent to recording every
    /// value into one — the property the retired-shard accumulator
    /// relies on for exactly-once snapshots.
    #[test]
    fn histogram_merge_equals_single_pass(
        a in prop::collection::vec(0u64..(1u64 << 40), 0..100),
        b in prop::collection::vec(0u64..(1u64 << 40), 0..100),
    ) {
        let mut ha = Histogram::default();
        for &v in &a {
            ha.record(v);
        }
        let mut hb = Histogram::default();
        for &v in &b {
            hb.record(v);
        }
        let mut merged = ha.clone();
        merged.merge(&hb);
        let mut single = Histogram::default();
        for &v in a.iter().chain(&b) {
            single.record(v);
        }
        prop_assert_eq!(merged, single);
    }

    /// Quantile estimates stay within the documented relative-error
    /// bound of the exact nearest-rank value (bucket width <= lower/32,
    /// plus integer rounding).
    #[test]
    fn histogram_quantile_bounded_relative_error(
        mut values in prop::collection::vec(1u64..100_000_000, 1..200),
        q in 0.0f64..1.0,
    ) {
        let mut h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1];
        let approx = h.quantile(q);
        let err = approx.abs_diff(exact);
        prop_assert!(
            err <= exact / 32 + 1,
            "q={} exact={} approx={}", q, exact, approx
        );
    }

    /// Increments racing across threads — including threads that exit
    /// before the snapshot — merge to the exact sum.
    #[test]
    fn concurrent_shard_increments_merge_exactly(
        per_thread in prop::collection::vec(prop::collection::vec(1u64..1000, 1..20), 1..8),
    ) {
        set_metrics_enabled(true);
        let name = leaked_name("obs.prop.sum");
        let before = snapshot();
        let expected: u64 = per_thread.iter().flatten().sum();
        let handles: Vec<_> = per_thread
            .into_iter()
            .map(|vals| {
                std::thread::spawn(move || {
                    for v in vals {
                        counter_add(name, v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let d = snapshot().delta_since(&before);
        prop_assert_eq!(d.counter(name), expected);
    }
}
