//! Property tests for the collective contracts — the distributed
//! analogue of the codec's `|x − x'| ≤ eb` suite: a compressed
//! `all_reduce` over **random shapes and values** must stay within the
//! configured error bound of the exact dense-f32 reference, and every
//! rank must finish with bit-identical buffers (the replica-lockstep
//! invariant).
//!
//! Error budget (see `DESIGN.md` §7): the scatter phase accumulates at
//! most `(N−1)·eb` on a segment's sum and the gather owner quantizes
//! once more (`+eb`); after the final division by `N` the per-element
//! error is ≤ `eb`. With error feedback the transmitted value includes
//! the previous residual (|r| ≤ eb), so any *single* step stays within
//! `2·eb` while the time average is unbiased.

use ebtrain_dist::{seg_ranges, Collective, CompressedRing, DenseRing};
use ebtrain_dnn::BucketPlan;
use ebtrain_pool::WorkerPool;
use proptest::prelude::*;
use std::sync::Arc;

/// Run `all_reduce` concurrently on every rank; returns per-rank buffers.
fn all_reduce_group(coll: Arc<dyn Collective>, mut bufs: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    let world = bufs.len();
    let pool = WorkerPool::new(world);
    pool.scope(|s| {
        for (rank, buf) in bufs.iter_mut().enumerate() {
            let coll = Arc::clone(&coll);
            s.spawn(move || coll.all_reduce(rank, buf).unwrap());
        }
    });
    bufs
}

fn random_bufs(world: usize, len: usize, seed: u64, scale: f32) -> Vec<Vec<f32>> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..world)
        .map(|_| (0..len).map(|_| rng.gen_range(-scale..scale)).collect())
        .collect()
}

fn exact_mean(bufs: &[Vec<f32>]) -> Vec<f64> {
    let world = bufs.len() as f64;
    (0..bufs[0].len())
        .map(|i| bufs.iter().map(|b| b[i] as f64).sum::<f64>() / world)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compressed_all_reduce_matches_dense_reference_within_eb(
        world in 2usize..5,
        len in prop_oneof![1usize..300, 3000usize..20_000],
        seed in any::<u64>(),
        eb_exp in -4i32..-1,
        scale in prop_oneof![Just(1.0f32), Just(10.0f32)],
    ) {
        let eb = 10f32.powi(eb_exp);
        let bufs = random_bufs(world, len, seed, scale);
        let expect = exact_mean(&bufs);

        // Dense reference: exact up to f32 summation order.
        let dense = all_reduce_group(Arc::new(DenseRing::new(world)), bufs.clone());
        let f32_slack = scale * world as f32 * 1e-5;
        for b in &dense {
            for (x, e) in b.iter().zip(&expect) {
                prop_assert!(((*x as f64) - e).abs() <= f32_slack as f64 + 1e-9);
            }
        }

        // Compressed (no error feedback): within eb of the dense result.
        let coll = Arc::new(CompressedRing::new(world, eb, false));
        let comp = all_reduce_group(coll.clone(), bufs.clone());
        let tol = (eb + f32_slack) as f64 + 1e-9;
        for (rank, b) in comp.iter().enumerate() {
            prop_assert_eq!(b.len(), len);
            for (i, (x, e)) in b.iter().zip(&expect).enumerate() {
                prop_assert!(
                    ((*x as f64) - e).abs() <= tol,
                    "rank {} elem {}: {} vs {} (eb {})", rank, i, x, e, eb
                );
            }
        }
        // Replica lockstep: all ranks bit-identical.
        for b in &comp[1..] {
            prop_assert_eq!(b, &comp[0]);
        }
        // Accounting sanity. (No byte-savings assertion here: random
        // uniform values are the codec's adversarial case — per-hop
        // codebooks can outweigh dense f32. Real gradients are smooth
        // and sparse; the reduction claim is asserted on them by the
        // trainer tests and `fig12_dist_scaling`.)
        let st = coll.stats();
        prop_assert!(st.messages > 0);
        prop_assert!(st.dense_equiv_bytes > 0);
    }

    #[test]
    fn error_feedback_single_step_stays_within_two_eb(
        world in 2usize..5,
        len in 100usize..6000,
        seed in any::<u64>(),
        eb_exp in -3i32..-1,
    ) {
        let eb = 10f32.powi(eb_exp);
        let bufs = random_bufs(world, len, seed, 1.0);
        let expect = exact_mean(&bufs);
        let coll = Arc::new(CompressedRing::new(world, eb, true));
        // Two successive steps on the same collective: the second one
        // carries non-zero residuals.
        let _ = all_reduce_group(coll.clone(), bufs.clone());
        let comp = all_reduce_group(coll.clone(), bufs.clone());
        let tol = (2.0 * eb) as f64 + 1e-6;
        for b in &comp {
            for (x, e) in b.iter().zip(&expect) {
                prop_assert!(((*x as f64) - e).abs() <= tol,
                    "{} vs {} (eb {})", x, e, eb);
            }
        }
        for b in &comp[1..] {
            prop_assert_eq!(b, &comp[0]);
        }
    }

    #[test]
    fn segments_always_tile_random_lengths(
        len in 0usize..100_000,
        world in 1usize..9,
    ) {
        let segs = seg_ranges(len, world);
        prop_assert_eq!(segs.len(), world);
        let mut cursor = 0;
        for s in &segs {
            prop_assert_eq!(s.start, cursor);
            prop_assert!(s.end >= s.start);
            cursor = s.end;
        }
        prop_assert_eq!(cursor, len);
    }

    #[test]
    fn bucket_plan_covers_every_flat_element_exactly_once(
        sizes in prop::collection::vec(1usize..5000, 1..12),
        target_bytes in prop_oneof![Just(0usize), 1usize..40_000],
    ) {
        let spans: Vec<(usize, usize)> = sizes
            .iter()
            .enumerate()
            .map(|(id, &elems)| (id * 3 + 1, elems)) // sparse, non-contiguous ids
            .collect();
        let total: usize = sizes.iter().sum();
        let plan = BucketPlan::from_spans(&spans, target_bytes);
        prop_assert_eq!(plan.total_len(), total);

        // Bucket ranges tile [0, total) in order: no gaps, no overlap,
        // no empty buckets.
        let mut cursor = 0usize;
        for b in plan.buckets() {
            prop_assert_eq!(b.range.start, cursor);
            prop_assert!(b.range.end > b.range.start, "empty bucket");
            prop_assert!(!b.layers.is_empty());
            cursor = b.range.end;
        }
        prop_assert_eq!(cursor, total);

        // Every layer appears in exactly one bucket, wholly inside it,
        // and the slots tile each bucket exactly.
        let mut seen = 0usize;
        let mut off = 0usize;
        for &(id, elems) in &spans {
            let slot = plan.slot(id).expect("layer has a slot");
            prop_assert_eq!(slot.flat_offset, off);
            prop_assert_eq!(slot.len, elems);
            let r = plan.bucket_range(slot.bucket);
            prop_assert!(r.start <= off && off + elems <= r.end);
            prop_assert!(plan.buckets()[slot.bucket].layers.contains(&id));
            seen += 1;
            off += elems;
        }
        prop_assert_eq!(seen, spans.len());
        let listed: usize = plan.buckets().iter().map(|b| b.layers.len()).sum();
        prop_assert_eq!(listed, spans.len(), "a layer listed twice");
    }

    #[test]
    fn bucketed_dense_sync_is_bit_identical_to_whole_tensor(
        world in 2usize..5,
        sizes in prop::collection::vec(
            prop_oneof![1usize..300, 2000usize..30_000], 1..8),
        target_bytes in prop_oneof![Just(0usize), 16usize..100_000],
        seed in any::<u64>(),
    ) {
        // Bucket segmentation inherits the whole-tensor segment map
        // (`seg_ranges_at`), so each element's f32 reduction association
        // order is independent of bucketing — the results must match the
        // legacy whole-tensor sync to the bit, for any geometry.
        let spans: Vec<(usize, usize)> = sizes.iter().copied().enumerate().collect();
        let total: usize = sizes.iter().sum();
        let plan = BucketPlan::from_spans(&spans, target_bytes);
        let bufs = random_bufs(world, total, seed, 1.0);

        let whole = all_reduce_group(Arc::new(DenseRing::new(world)), bufs.clone());

        let coll: Arc<dyn Collective> = Arc::new(DenseRing::new(world));
        let mut bucketed = bufs;
        let pool = WorkerPool::new(world);
        pool.scope(|s| {
            for (rank, flat) in bucketed.iter_mut().enumerate() {
                let coll = Arc::clone(&coll);
                let plan = &plan;
                s.spawn(move || {
                    for b in 0..plan.num_buckets() {
                        let r = plan.bucket_range(b);
                        let start = r.start;
                        coll.all_reduce_aligned(rank, &mut flat[r], b as u64, start, total)
                            .unwrap();
                    }
                });
            }
        });

        for (rank, (bw, ww)) in bucketed.iter().zip(&whole).enumerate() {
            let a: Vec<u32> = bw.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = ww.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(a, b, "rank {} diverged from whole-tensor sync", rank);
        }
    }
}
