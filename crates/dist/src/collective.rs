//! The [`Collective`] trait, communication-byte accounting, and the ring
//! segment geometry.
//!
//! A collective is shared (`Arc`) by all workers of one group; each
//! worker calls the operations from its own thread with its `rank`, and
//! the implementation synchronizes internally. Semantics follow the
//! MPI/NCCL conventions with one deliberate twist: **`all_reduce`
//! averages** (divides by the world size) because gradient averaging is
//! the only reduction this workspace performs, and folding the division
//! into the collective keeps every replica's arithmetic identical.

use crate::Result;
use std::ops::Range;

/// Ring segments are aligned to this many elements — exactly one `D1`
/// plane of the Z2 stream format ([`ebtrain_sz::DataLayout::plane_elems`]),
/// so that a segment of the gradient coincides with a whole number of
/// chunk frames and the first scatter hop can be served by the frame
/// index (`decompress_planes`) without decoding neighbouring segments.
pub const SEG_ALIGN: usize = 4096;

/// Split `len` elements into `world` contiguous ring segments, aligned
/// to [`SEG_ALIGN`] (ceil-divided in plane units, so every segment but
/// the last covers the same number of planes; trailing segments may be
/// empty when the vector is small).
pub fn seg_ranges(len: usize, world: usize) -> Vec<Range<usize>> {
    let world = world.max(1);
    let planes = len.div_ceil(SEG_ALIGN);
    let per = planes.div_ceil(world).max(1);
    (0..world)
        .map(|i| {
            let lo = (i * per * SEG_ALIGN).min(len);
            let hi = (((i + 1) * per) * SEG_ALIGN).min(len);
            lo..hi.max(lo)
        })
        .collect()
}

/// Planes per segment for a `len`-element vector (the `chunk_planes`
/// setting that makes Z2 frames coincide with ring segments).
pub fn seg_planes(len: usize, world: usize) -> usize {
    len.div_ceil(SEG_ALIGN).div_ceil(world.max(1)).max(1)
}

/// Cumulative communication counters of a collective.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages plus per-receiver broadcast deliveries.
    pub messages: u64,
    /// Bytes that actually travelled (compressed size for compressed
    /// transports; for the frame-indexed hop, the shared header/codebook
    /// plus only the frames covering the sent segment).
    pub payload_bytes: u64,
    /// Bytes a dense f32 transport would have moved for the identical
    /// schedule — the baseline of the Fig 12 reduction claim.
    pub dense_equiv_bytes: u64,
    /// Completed broadcast operations (counted once per group).
    pub broadcasts: u64,
    /// Completed reduce-scatter/all-gather phases (an `all_reduce` is
    /// one of each).
    pub phases: u64,
}

impl CommStats {
    /// `dense_equiv_bytes / payload_bytes` — how much the transport
    /// saved over dense f32 (1.0 for the dense baseline itself).
    pub fn reduction_ratio(&self) -> f64 {
        if self.payload_bytes == 0 {
            1.0
        } else {
            self.dense_equiv_bytes as f64 / self.payload_bytes as f64
        }
    }

    /// Element-wise difference (for per-step deltas).
    pub fn delta_since(&self, earlier: &CommStats) -> CommStats {
        CommStats {
            messages: self.messages - earlier.messages,
            payload_bytes: self.payload_bytes - earlier.payload_bytes,
            dense_equiv_bytes: self.dense_equiv_bytes - earlier.dense_equiv_bytes,
            broadcasts: self.broadcasts - earlier.broadcasts,
            phases: self.phases - earlier.phases,
        }
    }
}

/// An in-memory collective for one group of `world_size` workers.
///
/// Every method is called **concurrently by all ranks** (each from its
/// own thread) and returns only when this rank's part of the operation
/// completed. Implementations must release every blocked rank with
/// [`DistError::Aborted`](crate::DistError::Aborted) when any rank calls
/// [`abort`](Collective::abort) (or fails internally), so one worker's
/// failure can never deadlock the group.
pub trait Collective: Send + Sync {
    /// Number of participating ranks.
    fn world_size(&self) -> usize;

    /// Implementation name (reporting).
    fn name(&self) -> &'static str;

    /// Replace every rank's `buf` with `root`'s — used once at start-up
    /// to put all replicas on identical parameters. Compressed
    /// implementations quantize: **all** ranks (root included) end up
    /// with the identical decoded copy.
    fn broadcast(&self, rank: usize, root: usize, buf: &mut [f32]) -> Result<()>;

    /// Ring reduce-scatter: on return, this rank's **owned segment** of
    /// `buf` (see [`seg_ranges`]) holds the across-rank **sum**; other
    /// segments hold partial garbage. Returns the owned segment index.
    fn reduce_scatter(&self, rank: usize, buf: &mut [f32]) -> Result<usize>;

    /// Ring all-gather of per-segment results: each rank contributes the
    /// segment it owns (`owned` from [`reduce_scatter`](Collective::reduce_scatter));
    /// on return every rank's `buf` holds identical values in all
    /// segments.
    fn all_gather(&self, rank: usize, owned: usize, buf: &mut [f32]) -> Result<()>;

    /// Average `buf` across all ranks (reduce-scatter, all-gather, then
    /// divide by the world size). Every rank returns with **bit-identical**
    /// contents — compressed implementations guarantee this by having the
    /// segment owner adopt its own quantized stream.
    fn all_reduce(&self, rank: usize, buf: &mut [f32]) -> Result<()> {
        if self.world_size() <= 1 || buf.is_empty() {
            return Ok(());
        }
        let owned = self.reduce_scatter(rank, buf)?;
        self.all_gather(rank, owned, buf)?;
        let inv = 1.0 / self.world_size() as f32;
        for v in buf.iter_mut() {
            *v *= inv;
        }
        Ok(())
    }

    /// Cumulative communication counters.
    fn stats(&self) -> CommStats;

    /// Zero the counters.
    fn reset_stats(&self);

    /// Update the transport's error bound (no-op for lossless
    /// transports) — the knob the σ-model hook turns.
    fn set_error_bound(&self, _eb: f32) {}

    /// Current error bound, if the transport is lossy.
    fn error_bound(&self) -> Option<f32> {
        None
    }

    /// Poison the collective: every rank blocked in (or later entering)
    /// any operation returns [`DistError::Aborted`](crate::DistError::Aborted).
    fn abort(&self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_tile_the_vector_plane_aligned() {
        for (len, world) in [
            (SEG_ALIGN * 10, 4),
            (SEG_ALIGN * 10 + 17, 4),
            (100, 3),
            (0, 2),
            (SEG_ALIGN, 8),
            (SEG_ALIGN * 3 - 1, 2),
        ] {
            let segs = seg_ranges(len, world);
            assert_eq!(segs.len(), world);
            let mut cursor = 0;
            for (i, s) in segs.iter().enumerate() {
                assert_eq!(s.start, cursor, "len {len} world {world} seg {i}");
                assert!(s.end >= s.start);
                // Interior boundaries sit on plane multiples.
                if s.end < len {
                    assert_eq!(s.end % SEG_ALIGN, 0, "unaligned boundary at seg {i}");
                }
                cursor = s.end;
            }
            assert_eq!(cursor, len, "segments must cover the vector");
        }
    }

    #[test]
    fn seg_planes_matches_ranges() {
        let len = SEG_ALIGN * 10 + 5;
        let world = 4;
        let per = seg_planes(len, world);
        let segs = seg_ranges(len, world);
        for (i, s) in segs.iter().enumerate() {
            if !s.is_empty() {
                assert_eq!(s.start, i * per * SEG_ALIGN);
            }
        }
    }

    #[test]
    fn stats_ratio_and_delta() {
        let a = CommStats {
            messages: 2,
            payload_bytes: 100,
            dense_equiv_bytes: 800,
            broadcasts: 0,
            phases: 1,
        };
        assert!((a.reduction_ratio() - 8.0).abs() < 1e-12);
        assert_eq!(CommStats::default().reduction_ratio(), 1.0);
        let later = CommStats {
            messages: 5,
            payload_bytes: 150,
            dense_equiv_bytes: 1000,
            broadcasts: 1,
            phases: 2,
        };
        let d = later.delta_since(&a);
        assert_eq!(d.messages, 3);
        assert_eq!(d.payload_bytes, 50);
        assert_eq!(d.dense_equiv_bytes, 200);
        assert_eq!(d.broadcasts, 1);
        assert_eq!(d.phases, 1);
    }
}
