//! The [`Collective`] trait, communication-byte accounting, and the ring
//! segment geometry.
//!
//! A collective is shared (`Arc`) by all workers of one group; each
//! worker calls the operations from its own thread with its `rank`, and
//! the implementation synchronizes internally. Semantics follow the
//! MPI/NCCL conventions with one deliberate twist: **`all_reduce`
//! averages** (divides by the world size) because gradient averaging is
//! the only reduction this workspace performs, and folding the division
//! into the collective keeps every replica's arithmetic identical.

use crate::Result;
use std::ops::Range;
use std::time::Duration;

/// Ring segments are aligned to this many elements — exactly one `D1`
/// plane of the Z2 stream format ([`ebtrain_sz::DataLayout::plane_elems`]),
/// so that a segment of the gradient coincides with a whole number of
/// chunk frames and the first scatter hop can be served by the frame
/// index (`decompress_planes`) without decoding neighbouring segments.
pub const SEG_ALIGN: usize = 4096;

/// Split `len` elements into `world` contiguous ring segments, aligned
/// to [`SEG_ALIGN`] (ceil-divided in plane units, so every segment but
/// the last covers the same number of planes; trailing segments may be
/// empty when the vector is small).
pub fn seg_ranges(len: usize, world: usize) -> Vec<Range<usize>> {
    let world = world.max(1);
    let planes = len.div_ceil(SEG_ALIGN);
    let per = planes.div_ceil(world).max(1);
    (0..world)
        .map(|i| {
            let lo = (i * per * SEG_ALIGN).min(len);
            let hi = (((i + 1) * per) * SEG_ALIGN).min(len);
            lo..hi.max(lo)
        })
        .collect()
}

/// Planes per segment for a `len`-element vector (the `chunk_planes`
/// setting that makes Z2 frames coincide with ring segments).
pub fn seg_planes(len: usize, world: usize) -> usize {
    len.div_ceil(SEG_ALIGN).div_ceil(world.max(1)).max(1)
}

/// Segmentation for a **window** `[start, start + len)` of a larger
/// `total`-element flat tensor: the global segments of the whole tensor
/// ([`seg_ranges`]`(total, world)`), intersected with the window and
/// shifted to window-local coordinates.
///
/// This is how bucket collectives stay **bit-identical to the legacy
/// whole-tensor sync**: a ring reduce folds segment `s`'s values in a
/// fixed rank order that *starts at rank `s`*, so re-segmenting a
/// bucket locally would change each element's f32 association order.
/// By inheriting the whole-tensor segment map, every element keeps the
/// association order it would have had in one whole-tensor reduce, no
/// matter how the flat view is bucketed. (Segments that miss the window
/// come back empty; the ring schedule ships them as empty payloads.)
pub fn seg_ranges_at(start: usize, len: usize, total: usize, world: usize) -> Vec<Range<usize>> {
    debug_assert!(start + len <= total, "window exceeds the flat tensor");
    let end = start + len;
    seg_ranges(total, world)
        .into_iter()
        .map(|g| {
            let lo = g.start.clamp(start, end);
            let hi = g.end.clamp(start, end).max(lo);
            lo - start..hi - start
        })
        .collect()
}

/// Cumulative communication counters of a collective.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages plus per-receiver broadcast deliveries.
    pub messages: u64,
    /// Bytes that actually travelled (compressed size for compressed
    /// transports; for the frame-indexed hop, the shared header/codebook
    /// plus only the frames covering the sent segment).
    pub payload_bytes: u64,
    /// Bytes a dense f32 transport would have moved for the identical
    /// schedule — the baseline of the Fig 12 reduction claim.
    pub dense_equiv_bytes: u64,
    /// Completed broadcast operations (counted once per group).
    pub broadcasts: u64,
    /// Completed reduce-scatter/all-gather phases (an `all_reduce` is
    /// one of each).
    pub phases: u64,
}

impl CommStats {
    /// `dense_equiv_bytes / payload_bytes` — how much the transport
    /// saved over dense f32 (1.0 for the dense baseline itself).
    pub fn reduction_ratio(&self) -> f64 {
        if self.payload_bytes == 0 {
            1.0
        } else {
            self.dense_equiv_bytes as f64 / self.payload_bytes as f64
        }
    }

    /// Element-wise difference (for per-step deltas).
    ///
    /// Per-phase *timings* (encode/decode/wire/wait) are not here: they
    /// live in the `ebtrain-obs` registry as the `dist.encode` /
    /// `dist.decode` spans and the `dist.wire.nanos` / `dist.wait.nanos`
    /// counters, and are deltaed with
    /// [`Snapshot::delta_since`](ebtrain_obs::Snapshot::delta_since).
    pub fn delta_since(&self, earlier: &CommStats) -> CommStats {
        CommStats {
            messages: self.messages - earlier.messages,
            payload_bytes: self.payload_bytes - earlier.payload_bytes,
            dense_equiv_bytes: self.dense_equiv_bytes - earlier.dense_equiv_bytes,
            broadcasts: self.broadcasts - earlier.broadcasts,
            phases: self.phases - earlier.phases,
        }
    }
}

/// An in-memory collective for one group of `world_size` workers.
///
/// Every method is called **concurrently by all ranks** (each from its
/// own thread) and returns only when this rank's part of the operation
/// completed. Implementations must release every blocked rank with
/// [`DistError::Aborted`](crate::DistError::Aborted) when any rank calls
/// [`abort`](Collective::abort) (or fails internally), so one worker's
/// failure can never deadlock the group.
pub trait Collective: Send + Sync {
    /// Number of participating ranks.
    fn world_size(&self) -> usize;

    /// Implementation name (reporting).
    fn name(&self) -> &'static str;

    /// Replace every rank's `buf` with `root`'s — used once at start-up
    /// to put all replicas on identical parameters. Compressed
    /// implementations quantize: **all** ranks (root included) end up
    /// with the identical decoded copy.
    fn broadcast(&self, rank: usize, root: usize, buf: &mut [f32]) -> Result<()>;

    /// Ring reduce-scatter: on return, this rank's **owned segment** of
    /// `buf` (see [`seg_ranges`]) holds the across-rank **sum**; other
    /// segments hold partial garbage. Returns the owned segment index.
    fn reduce_scatter(&self, rank: usize, buf: &mut [f32]) -> Result<usize>;

    /// Ring all-gather of per-segment results: each rank contributes the
    /// segment it owns (`owned` from [`reduce_scatter`](Collective::reduce_scatter));
    /// on return every rank's `buf` holds identical values in all
    /// segments.
    fn all_gather(&self, rank: usize, owned: usize, buf: &mut [f32]) -> Result<()>;

    /// Average `buf` across all ranks (reduce-scatter, all-gather, then
    /// divide by the world size). Every rank returns with **bit-identical**
    /// contents — compressed implementations guarantee this by having the
    /// segment owner adopt its own quantized stream.
    fn all_reduce(&self, rank: usize, buf: &mut [f32]) -> Result<()> {
        if self.world_size() <= 1 || buf.is_empty() {
            return Ok(());
        }
        let owned = self.reduce_scatter(rank, buf)?;
        self.all_gather(rank, owned, buf)?;
        let inv = 1.0 / self.world_size() as f32;
        for v in buf.iter_mut() {
            *v *= inv;
        }
        Ok(())
    }

    /// Tagged reduce-scatter: identical semantics to
    /// [`reduce_scatter`](Collective::reduce_scatter), but all messages
    /// travel under `tag`, so **several tagged collectives may be in
    /// flight concurrently** on the same group (one per gradient
    /// bucket). Every rank must launch the same set of tags.
    fn reduce_scatter_tagged(&self, rank: usize, buf: &mut [f32], _tag: u64) -> Result<usize> {
        self.reduce_scatter(rank, buf)
    }

    /// Tagged all-gather — see
    /// [`reduce_scatter_tagged`](Collective::reduce_scatter_tagged).
    fn all_gather_tagged(
        &self,
        rank: usize,
        owned: usize,
        buf: &mut [f32],
        _tag: u64,
    ) -> Result<()> {
        self.all_gather(rank, owned, buf)
    }

    /// Tagged averaging all-reduce: the bucket-granular form of
    /// [`all_reduce`](Collective::all_reduce), usable concurrently for
    /// distinct tags.
    fn all_reduce_tagged(&self, rank: usize, buf: &mut [f32], tag: u64) -> Result<()> {
        if self.world_size() <= 1 || buf.is_empty() {
            return Ok(());
        }
        let owned = self.reduce_scatter_tagged(rank, buf, tag)?;
        self.all_gather_tagged(rank, owned, buf, tag)?;
        let inv = 1.0 / self.world_size() as f32;
        for v in buf.iter_mut() {
            *v *= inv;
        }
        Ok(())
    }

    /// **Exact** (dense f32) tagged all-gather, even on lossy
    /// transports: the ZeRO-style parameter gather — updated parameters
    /// are shipped once, losslessly, like the startup broadcast. The
    /// default is correct for exact transports.
    fn all_gather_exact(&self, rank: usize, owned: usize, buf: &mut [f32], tag: u64) -> Result<()> {
        self.all_gather_tagged(rank, owned, buf, tag)
    }

    /// Tagged reduce-scatter of a **window** of a larger flat tensor:
    /// `buf` holds elements `[start, start + buf.len())` of a
    /// `total`-element flat view, and segmentation follows
    /// [`seg_ranges_at`] — so bucket-granular sync keeps each element's
    /// reduction association order identical to one whole-tensor sync
    /// (the bit-identity invariant the bucket proptests pin). The
    /// default ignores the alignment, which is correct for any transport
    /// whose reduction order is segmentation-independent.
    fn reduce_scatter_aligned(
        &self,
        rank: usize,
        buf: &mut [f32],
        tag: u64,
        _start: usize,
        _total: usize,
    ) -> Result<usize> {
        self.reduce_scatter_tagged(rank, buf, tag)
    }

    /// Window form of [`all_gather_tagged`](Collective::all_gather_tagged)
    /// — see [`reduce_scatter_aligned`](Collective::reduce_scatter_aligned).
    fn all_gather_aligned(
        &self,
        rank: usize,
        owned: usize,
        buf: &mut [f32],
        tag: u64,
        _start: usize,
        _total: usize,
    ) -> Result<()> {
        self.all_gather_tagged(rank, owned, buf, tag)
    }

    /// Window form of [`all_reduce_tagged`](Collective::all_reduce_tagged):
    /// averaging all-reduce of one bucket, bit-identical to the same
    /// elements inside a whole-tensor `all_reduce`.
    fn all_reduce_aligned(
        &self,
        rank: usize,
        buf: &mut [f32],
        tag: u64,
        start: usize,
        total: usize,
    ) -> Result<()> {
        if self.world_size() <= 1 || buf.is_empty() {
            return Ok(());
        }
        let owned = self.reduce_scatter_aligned(rank, buf, tag, start, total)?;
        self.all_gather_aligned(rank, owned, buf, tag, start, total)?;
        let inv = 1.0 / self.world_size() as f32;
        for v in buf.iter_mut() {
            *v *= inv;
        }
        Ok(())
    }

    /// Window form of [`all_gather_exact`](Collective::all_gather_exact)
    /// (the ZeRO parameter gather).
    fn all_gather_exact_aligned(
        &self,
        rank: usize,
        owned: usize,
        buf: &mut [f32],
        tag: u64,
        _start: usize,
        _total: usize,
    ) -> Result<()> {
        self.all_gather_exact(rank, owned, buf, tag)
    }

    /// Cumulative communication counters.
    fn stats(&self) -> CommStats;

    /// Zero the counters.
    fn reset_stats(&self);

    /// Update the transport's error bound (no-op for lossless
    /// transports) — the knob the σ-model hook turns.
    fn set_error_bound(&self, _eb: f32) {}

    /// Current error bound, if the transport is lossy.
    fn error_bound(&self) -> Option<f32> {
        None
    }

    /// Per-bucket error-bound override: tagged operations under `tag`
    /// use `eb` instead of the global bound (σ-model refinement from
    /// each bucket's own gradient statistics). `None` clears the
    /// override. No-op for lossless transports.
    fn set_bucket_error_bound(&self, _tag: u64, _eb: Option<f32>) {}

    /// Bounded-staleness straggler deadline: a rank blocked in `recv`
    /// longer than this poisons the collective and every peer returns a
    /// clean `Aborted` instead of waiting forever. `None` (default)
    /// waits indefinitely.
    fn set_straggler_timeout(&self, _timeout: Option<Duration>) {}

    /// Enable the modeled interconnect: every send sleeps
    /// `bytes / (mibps MiB/s)` before delivery and accounts the time
    /// under the `dist.wire.nanos` registry counter. `None` (default)
    /// disables the model —
    /// in-memory payload handoff is then effectively free, which hides
    /// the byte savings of compressed transports from wall-clock
    /// numbers.
    fn set_wire_mibps(&self, _mibps: Option<f64>) {}

    /// Poison the collective: every rank blocked in (or later entering)
    /// any operation returns [`DistError::Aborted`](crate::DistError::Aborted).
    fn abort(&self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_tile_the_vector_plane_aligned() {
        for (len, world) in [
            (SEG_ALIGN * 10, 4),
            (SEG_ALIGN * 10 + 17, 4),
            (100, 3),
            (0, 2),
            (SEG_ALIGN, 8),
            (SEG_ALIGN * 3 - 1, 2),
        ] {
            let segs = seg_ranges(len, world);
            assert_eq!(segs.len(), world);
            let mut cursor = 0;
            for (i, s) in segs.iter().enumerate() {
                assert_eq!(s.start, cursor, "len {len} world {world} seg {i}");
                assert!(s.end >= s.start);
                // Interior boundaries sit on plane multiples.
                if s.end < len {
                    assert_eq!(s.end % SEG_ALIGN, 0, "unaligned boundary at seg {i}");
                }
                cursor = s.end;
            }
            assert_eq!(cursor, len, "segments must cover the vector");
        }
    }

    #[test]
    fn seg_planes_matches_ranges() {
        let len = SEG_ALIGN * 10 + 5;
        let world = 4;
        let per = seg_planes(len, world);
        let segs = seg_ranges(len, world);
        for (i, s) in segs.iter().enumerate() {
            if !s.is_empty() {
                assert_eq!(s.start, i * per * SEG_ALIGN);
            }
        }
    }

    #[test]
    fn window_segments_are_global_intersections() {
        let total = SEG_ALIGN * 9 + 100;
        let world = 4;
        let global = seg_ranges(total, world);
        // A whole-tensor window reproduces the global map.
        assert_eq!(seg_ranges_at(0, total, total, world), global);
        for (start, len) in [
            (0usize, SEG_ALIGN / 2),
            (17, SEG_ALIGN * 3),
            (SEG_ALIGN * 2 + 5, SEG_ALIGN * 5),
            (total - 1, 1),
            (SEG_ALIGN, 0),
        ] {
            let segs = seg_ranges_at(start, len, total, world);
            assert_eq!(segs.len(), world);
            let mut cursor = 0usize;
            for (i, s) in segs.iter().enumerate() {
                assert_eq!(s.start, cursor, "window ({start},{len}) seg {i}");
                assert!(s.end >= s.start);
                // Each piece is exactly the global segment clipped to
                // the window.
                let g = &global[i];
                let lo = g.start.clamp(start, start + len);
                let hi = g.end.clamp(start, start + len).max(lo);
                assert_eq!(s.start + start, lo);
                assert_eq!(s.end + start, hi);
                cursor = s.end;
            }
            assert_eq!(cursor, len, "pieces must tile the window");
        }
    }

    #[test]
    fn stats_ratio_and_delta() {
        let a = CommStats {
            messages: 2,
            payload_bytes: 100,
            dense_equiv_bytes: 800,
            broadcasts: 0,
            phases: 1,
        };
        assert!((a.reduction_ratio() - 8.0).abs() < 1e-12);
        assert_eq!(CommStats::default().reduction_ratio(), 1.0);
        let later = CommStats {
            messages: 5,
            payload_bytes: 150,
            dense_equiv_bytes: 1000,
            broadcasts: 1,
            phases: 2,
        };
        let d = later.delta_since(&a);
        assert_eq!(d.messages, 3);
        assert_eq!(d.payload_bytes, 50);
        assert_eq!(d.dense_equiv_bytes, 200);
        assert_eq!(d.broadcasts, 1);
        assert_eq!(d.phases, 1);
    }
}
