//! [`BucketedGradSync`]: the bucket-granular, backward-overlapped
//! gradient synchronizer.
//!
//! One instance lives on each rank and plugs into the training loop
//! through the [`GradSync`] seam of `ebtrain-dnn`:
//!
//! * [`begin`](GradSync::begin) resets the per-step bucket state;
//! * [`grad_ready`](GradSync::grad_ready) fires as backward retires
//!   each layer — the layer's gradients are copied into the flat view
//!   at the offset its [`BucketPlan`] slot dictates, and the moment the
//!   *last* layer of a bucket retires, that bucket's collective is
//!   **launched asynchronously** on the shared comm pool (overlap
//!   mode), so ring hops for early (deep) buckets run while backward is
//!   still producing shallower layers' gradients;
//! * [`finish`](GradSync::finish) launches any stragglers (non-overlap
//!   mode launches everything here), joins the in-flight collectives in
//!   launch order — reporting the blocked time under the
//!   `dist.wait.nanos` registry counter (and a `dist.wait` span) — and
//!   either writes the averaged gradients back (classic all-reduce,
//!   [`SyncAction::LocalStep`]) or runs the **ZeRO-style sharded
//!   optimizer** and all-gathers updated parameters
//!   ([`SyncAction::StepApplied`]).
//!
//! # ZeRO-style sharded optimizer state
//!
//! In `reduce_scatter`-only mode each rank owns one ring segment of
//! every bucket (always segment `(rank + 1) % world` — the ring's
//! reduce-scatter invariant), keeps **momentum only for the owned
//! shards** (`~1/N` of the dense momentum footprint), applies the SGD
//! update to the owned parameter shard via
//! [`flat_sgd_update`] (bit-identical to the per-parameter
//! [`Sgd`](ebtrain_dnn::optimizer::Sgd) update), and all-gathers the
//! updated parameters **exactly** (dense f32, like the startup
//! broadcast) — so replicas remain bit-identical by construction even
//! on the lossy transport.
//!
//! # Why joining can't deadlock
//!
//! Every bucket task is, at any instant, either *running* on the comm
//! pool, *queued* (its rank's `finish` will inline-run it when joining
//! — `ebtrain-pool` handles claim queued work on join), or *not yet
//! submitted* (its rank's `finish` launches leftovers first). So every
//! task eventually runs, a blocked ring hop always gets its peer
//! message, and the worst case under pool saturation degrades to
//! non-overlapped serialization — never deadlock. A genuinely absent
//! peer is the straggler deadline's job
//! ([`Collective::set_straggler_timeout`]).

use crate::collective::{seg_ranges_at, Collective};
use crate::{DistError, Result};
use ebtrain_core::{summarize_gradient, GradSummary};
use ebtrain_dnn::bucket::BucketPlan;
use ebtrain_dnn::layer::Layer;
use ebtrain_dnn::network::Network;
use ebtrain_dnn::optimizer::{flat_sgd_update, SgdConfig};
use ebtrain_dnn::train::{GradSync, SyncAction};
use ebtrain_dnn::DnnError;
use ebtrain_pool::{TaskHandle, WorkerPool};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs of the bucketed synchronizer (one per group, identical on all
/// ranks).
#[derive(Debug, Clone)]
pub struct SyncConfig {
    /// Target f32-gradient bytes per bucket; `0` = one bucket for the
    /// whole network (the legacy whole-tensor sync). Default 256 KiB.
    pub bucket_bytes: usize,
    /// Launch each bucket's collective as soon as backward retires it
    /// (overlap with the rest of backward). `false` launches everything
    /// after backward — the non-overlapped baseline.
    pub overlap: bool,
    /// ZeRO-style mode: `reduce_scatter` only, shard the optimizer
    /// state, all-gather updated parameters exactly. Incompatible with
    /// the σ-adaptive comm bound (momentum lives in shards).
    pub zero_shard: bool,
    /// Bounded-staleness deadline: a rank waiting longer than this for
    /// a peer's message poisons the group and everyone gets a clean
    /// `Aborted`. `None` = wait forever.
    pub straggler_timeout: Option<Duration>,
    /// Modeled interconnect bandwidth (MiB/s): senders sleep
    /// `bytes / bandwidth` per message. `None` = off (in-memory handoff
    /// is free).
    pub wire_mibps: Option<f64>,
}

impl Default for SyncConfig {
    fn default() -> SyncConfig {
        SyncConfig {
            bucket_bytes: 256 * 1024,
            overlap: true,
            zero_shard: false,
            straggler_timeout: None,
            wire_mibps: None,
        }
    }
}

/// Result of one bucket's collective.
struct BucketDone {
    /// The bucket's values after the collective (averaged everywhere
    /// for all-reduce; summed in the owned segment for reduce-scatter).
    vals: Vec<f32>,
    /// Owned segment index (reduce-scatter mode only).
    owned: Option<usize>,
}

type BucketOutcome = std::result::Result<BucketDone, DistError>;

/// Sharded (ZeRO-style) optimizer state of one rank.
struct ZeroState {
    cfg: SgdConfig,
    iter: usize,
    /// Momentum for the owned segment of each bucket.
    momentum: Vec<Vec<f32>>,
    /// Weight-decay mask over the full flat parameter layout.
    decay: Vec<bool>,
    /// Scratch: the full flat parameter vector (reused across steps).
    flat_params: Vec<f32>,
    /// Bytes of optimizer state this rank actually holds.
    shard_bytes: usize,
}

/// Per-rank bucketed gradient synchronizer; see the module docs.
pub struct BucketedGradSync {
    rank: usize,
    world: usize,
    coll: Arc<dyn Collective>,
    pool: Arc<WorkerPool>,
    plan: Arc<BucketPlan>,
    overlap: bool,
    zero: Option<ZeroState>,
    want_summary: bool,
    // ---- per-step state ----
    flat: Vec<f32>,
    /// Per bucket: layers still to retire before launch.
    remaining: Vec<usize>,
    inflight: Vec<Option<TaskHandle<BucketOutcome>>>,
    launch_order: Vec<usize>,
    // ---- post-step observations (chief) ----
    last_summary: Option<GradSummary>,
    last_bucket_rms: Vec<f64>,
}

impl BucketedGradSync {
    /// Build the synchronizer for one rank. `plan` must be identical on
    /// every rank (it is — [`BucketPlan::build`] is deterministic over
    /// structurally identical networks). `zero_sgd` switches on the
    /// sharded-optimizer mode and must be `Some` iff
    /// [`SyncConfig::zero_shard`] is set; `want_summary` makes `finish`
    /// compute full and per-bucket gradient statistics (the chief rank
    /// feeds them to the σ-model).
    pub fn new(
        rank: usize,
        coll: Arc<dyn Collective>,
        pool: Arc<WorkerPool>,
        net: &Network,
        cfg: &SyncConfig,
        zero_sgd: Option<SgdConfig>,
        want_summary: bool,
    ) -> BucketedGradSync {
        let world = coll.world_size();
        let plan = Arc::new(BucketPlan::build(net, cfg.bucket_bytes));
        debug_assert_eq!(cfg.zero_shard, zero_sgd.is_some());
        let zero = zero_sgd.map(|sgd| {
            let mut decay = Vec::with_capacity(plan.total_len());
            net.visit_layers(&mut |layer| {
                for p in layer.params() {
                    decay.extend(std::iter::repeat_n(p.weight_decay, p.value.len()));
                }
            });
            debug_assert_eq!(decay.len(), plan.total_len());
            // Owned segment per bucket is fixed by the ring schedule:
            // (rank + 1) % world — size the momentum shards up front.
            // Buckets segment on the whole-tensor map (`seg_ranges_at`),
            // so this rank's owned pieces tile exactly whole-tensor
            // segment (rank + 1) % world: ~1/N of the parameters.
            let momentum: Vec<Vec<f32>> = (0..plan.num_buckets())
                .map(|b| {
                    let br = plan.bucket_range(b);
                    let owned = if world <= 1 { 0 } else { (rank + 1) % world };
                    vec![
                        0.0;
                        seg_ranges_at(br.start, br.len(), plan.total_len(), world)[owned].len()
                    ]
                })
                .collect();
            let shard_bytes = momentum.iter().map(|m| m.len() * 4).sum();
            ZeroState {
                cfg: sgd,
                iter: 0,
                momentum,
                decay,
                flat_params: Vec::new(),
                shard_bytes,
            }
        });
        let nb = plan.num_buckets();
        BucketedGradSync {
            rank,
            world,
            coll,
            pool,
            plan,
            overlap: cfg.overlap,
            zero,
            want_summary,
            flat: Vec::new(),
            remaining: vec![0; nb],
            inflight: (0..nb).map(|_| None).collect(),
            launch_order: Vec::new(),
            last_summary: None,
            last_bucket_rms: Vec::new(),
        }
    }

    /// The bucket plan this rank synchronizes with.
    pub fn plan(&self) -> &BucketPlan {
        &self.plan
    }

    /// Bytes of sharded optimizer state this rank holds (0 outside ZeRO
    /// mode) — the number a budgeted activation store is *told about*
    /// but must never charge against the activation budget.
    pub fn optimizer_shard_bytes(&self) -> usize {
        self.zero.as_ref().map_or(0, |z| z.shard_bytes)
    }

    /// Full reduced-gradient summary of the last step (only when built
    /// with `want_summary`; `None` in ZeRO mode, where the full reduced
    /// gradient never materializes on one rank).
    pub fn last_summary(&self) -> Option<GradSummary> {
        self.last_summary
    }

    /// Per-bucket RMS of the last step's reduced gradient (same
    /// conditions as [`last_summary`](BucketedGradSync::last_summary)).
    pub fn last_bucket_rms(&self) -> &[f64] {
        &self.last_bucket_rms
    }

    /// Launch bucket `b`'s collective on the comm pool. Aligned entry
    /// points: the bucket inherits the whole-tensor segment map, so the
    /// dense reduction is bit-identical to a whole-tensor sync.
    fn launch(&mut self, b: usize) {
        let brange = self.plan.bucket_range(b);
        let start = brange.start;
        let total = self.plan.total_len();
        let mut vals = self.flat[brange].to_vec();
        let coll = Arc::clone(&self.coll);
        let rank = self.rank;
        let scatter_only = self.zero.is_some();
        let tag = b as u64;
        let handle = self.pool.submit(move || -> BucketOutcome {
            // Spanning the whole collective (hops included) puts one
            // `dist.collective` block per bucket in the trace timeline —
            // the overlap with backward is directly visible in Perfetto.
            let _span = ebtrain_obs::span!("dist.collective", bytes = vals.len() * 4);
            if scatter_only {
                let owned = coll.reduce_scatter_aligned(rank, &mut vals, tag, start, total)?;
                Ok(BucketDone {
                    vals,
                    owned: Some(owned),
                })
            } else {
                coll.all_reduce_aligned(rank, &mut vals, tag, start, total)?;
                Ok(BucketDone { vals, owned: None })
            }
        });
        self.inflight[b] = Some(handle);
        self.launch_order.push(b);
    }

    /// Sharded update of one bucket: average the owned segment, step
    /// SGD on the owned parameter shard, all-gather updated parameters
    /// exactly.
    fn zero_apply_bucket(&mut self, b: usize, mut grads: Vec<f32>, owned: usize) -> Result<()> {
        let brange = self.plan.bucket_range(b);
        let total = self.plan.total_len();
        let z = self.zero.as_mut().expect("zero mode");
        let o = seg_ranges_at(brange.start, brange.len(), total, self.world)[owned].clone();
        if !o.is_empty() {
            let inv = 1.0 / self.world as f32;
            for v in &mut grads[o.clone()] {
                *v *= inv;
            }
            let g = brange.start + o.start..brange.start + o.end;
            if z.momentum[b].len() != o.len() {
                z.momentum[b] = vec![0.0; o.len()];
            }
            flat_sgd_update(
                &z.cfg,
                z.iter,
                &mut z.flat_params[g.clone()],
                &grads[o.clone()],
                &mut z.momentum[b],
                &z.decay[g],
            );
        }
        let start = brange.start;
        self.coll.all_gather_exact_aligned(
            self.rank,
            owned,
            &mut z.flat_params[brange],
            b as u64,
            start,
            total,
        )
    }
}

impl GradSync for BucketedGradSync {
    fn begin(&mut self, _net: &mut Network) -> ebtrain_dnn::Result<()> {
        if self.inflight.iter().any(|h| h.is_some()) {
            return Err(DnnError::State(
                "bucketed sync: previous step's collectives still in flight".into(),
            ));
        }
        let total = self.plan.total_len();
        if self.flat.len() != total {
            self.flat = vec![0.0; total];
        }
        for (r, b) in self.remaining.iter_mut().zip(self.plan.buckets()) {
            *r = b.layers.len();
        }
        self.launch_order.clear();
        self.last_summary = None;
        self.last_bucket_rms.clear();
        Ok(())
    }

    fn grad_ready(&mut self, layer: &dyn Layer) -> ebtrain_dnn::Result<()> {
        let Some(slot) = self.plan.slot(layer.id()) else {
            return Ok(());
        };
        let mut off = slot.flat_offset;
        for p in layer.params() {
            let g = p.grad.data();
            self.flat[off..off + g.len()].copy_from_slice(g);
            off += g.len();
        }
        debug_assert_eq!(off - slot.flat_offset, slot.len);
        let b = slot.bucket;
        self.remaining[b] = self.remaining[b]
            .checked_sub(1)
            .ok_or_else(|| DnnError::State(format!("bucket {b}: layer retired more than once")))?;
        if self.remaining[b] == 0 && self.overlap {
            self.launch(b);
        }
        Ok(())
    }

    fn finish(&mut self, net: &mut Network) -> ebtrain_dnn::Result<SyncAction> {
        // Launch everything not yet in flight (all buckets in
        // non-overlap mode; in overlap mode there should be none left —
        // but a layer that never fired is a hard error, not a silent
        // empty reduce).
        for b in 0..self.plan.num_buckets() {
            if self.inflight[b].is_none() {
                if self.remaining[b] != 0 {
                    return Err(DnnError::State(format!(
                        "bucket {b}: {} layer(s) never produced gradients",
                        self.remaining[b]
                    )));
                }
                self.launch(b);
            }
        }
        // ZeRO needs the current parameters before applying updates.
        if let Some(z) = self.zero.as_mut() {
            let mut flat_params = std::mem::take(&mut z.flat_params);
            net.flatten_params_into(&mut flat_params);
            z.flat_params = flat_params;
        }
        // Join in launch order; the blocked time is the non-overlapped
        // tail the phase breakdown reports as `wait`.
        let order = std::mem::take(&mut self.launch_order);
        let mut outcomes: Vec<Option<BucketDone>> =
            (0..self.plan.num_buckets()).map(|_| None).collect();
        let mut first_err: Option<DistError> = None;
        let mut waited = 0u64;
        {
            let _wait_span = ebtrain_obs::span!("dist.wait");
            for b in order {
                let handle = self.inflight[b].take().expect("launched above");
                let t0 = Instant::now();
                let out = handle.join();
                waited += t0.elapsed().as_nanos() as u64;
                match out {
                    Ok(done) => outcomes[b] = Some(done),
                    Err(e) => {
                        // Make sure peers blocked on later buckets get out.
                        self.coll.abort();
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
        }
        ebtrain_obs::counter_add("dist.wait.nanos", waited);
        if let Some(e) = first_err {
            return Err(DnnError::State(format!(
                "bucketed gradient sync failed: {e}"
            )));
        }
        if self.zero.is_some() {
            for (b, done) in outcomes.into_iter().enumerate() {
                let done = done.expect("joined above");
                let owned = done.owned.expect("reduce-scatter mode");
                self.zero_apply_bucket(b, done.vals, owned).map_err(|e| {
                    self.coll.abort();
                    DnnError::State(format!("sharded optimizer step failed: {e}"))
                })?;
            }
            let z = self.zero.as_mut().expect("zero mode");
            z.iter += 1;
            let flat_params = std::mem::take(&mut z.flat_params);
            net.unflatten_params(&flat_params)?;
            self.zero.as_mut().expect("zero mode").flat_params = flat_params;
            Ok(SyncAction::StepApplied)
        } else {
            for (b, done) in outcomes.into_iter().enumerate() {
                let done = done.expect("joined above");
                self.flat[self.plan.bucket_range(b)].copy_from_slice(&done.vals);
            }
            if self.want_summary {
                self.last_bucket_rms = (0..self.plan.num_buckets())
                    .map(|b| summarize_gradient(&self.flat[self.plan.bucket_range(b)]).rms)
                    .collect();
                self.last_summary = Some(summarize_gradient(&self.flat));
            }
            net.unflatten_grads(&self.flat)?;
            Ok(SyncAction::LocalStep)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::DenseRing;
    use ebtrain_dnn::zoo;

    /// Emulate what `Network::backward` does: retire layers in reverse
    /// visit order, calling `grad_ready` on each. `visit_layers` borrows
    /// `net` immutably while `sync` is a separate local, so a raw
    /// reborrow of `sync` inside the closure is alias-free.
    fn drive_backward(net: &Network, sync: &mut BucketedGradSync) {
        let mut ids = Vec::new();
        net.visit_layers(&mut |l| ids.push(l.id()));
        for &id in ids.iter().rev() {
            let mut err = None;
            // Split borrows: take sync out of scope of net's iteration.
            let sync_ptr: *mut BucketedGradSync = sync;
            net.visit_layers(&mut |l| {
                if l.id() == id && err.is_none() {
                    // SAFETY: visit_layers only borrows net; sync is a
                    // separate local. No aliasing.
                    let s = unsafe { &mut *sync_ptr };
                    if let Err(e) = s.grad_ready(l) {
                        err = Some(e);
                    }
                }
            });
            if let Some(e) = err {
                panic!("grad_ready failed: {e}");
            }
        }
    }

    #[test]
    fn single_rank_bucketed_sync_is_an_identity() {
        // world 1: collectives are no-ops; the bucketed path must hand
        // back exactly the gradients backward produced.
        let mut net = zoo::tiny_vgg(4, 3);
        let coll: Arc<dyn Collective> = Arc::new(DenseRing::new(1));
        let pool = Arc::new(WorkerPool::new(2));
        let cfg = SyncConfig::default();
        let mut sync = BucketedGradSync::new(0, coll, pool, &net, &cfg, None, true);
        assert!(sync.plan().num_buckets() > 1, "tiny_vgg should bucket");

        // Fake a backward pass: deposit known gradients, fire the hook
        // for every layer in reverse order, finish.
        sync.begin(&mut net).unwrap();
        let mut expect = Vec::new();
        {
            let mut seed = 0u32;
            for p in net.params_mut() {
                for g in p.grad.data_mut() {
                    seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
                    *g = (seed >> 8) as f32 / (1u32 << 24) as f32 - 0.5;
                    expect.push(*g);
                }
            }
        }
        drive_backward(&net, &mut sync);
        let action = sync.finish(&mut net).unwrap();
        assert!(matches!(action, SyncAction::LocalStep));
        let mut got = Vec::new();
        net.flatten_grads_into(&mut got);
        assert_eq!(got, expect, "world-1 sync must be an identity");
        assert!(sync.last_summary().is_some());
        assert_eq!(sync.last_bucket_rms().len(), sync.plan().num_buckets());
    }

    #[test]
    fn seeded_straggler_never_deadlocks_overlapped_buckets() {
        // Deterministic straggler injection under the *overlapped* async
        // bucket path: one seeded-random rank delays its whole backward
        // past the straggler deadline while its peers' bucket
        // collectives are already in flight on the comm pool. The
        // deadline must poison the group — every rank's `finish`
        // surfaces a clean error and nobody deadlocks.
        use rand::{Rng, SeedableRng};
        let world = 3;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xEB2021);
        let straggler = rng.gen_range(0..world);
        let delay = Duration::from_millis(rng.gen_range(250..400));
        let coll: Arc<dyn Collective> = Arc::new(DenseRing::new(world));
        coll.set_straggler_timeout(Some(Duration::from_millis(80)));
        let comm_pool = Arc::new(WorkerPool::new(world * 2));
        let driver = WorkerPool::new(world);
        let mut outcomes: Vec<Option<ebtrain_dnn::Result<SyncAction>>> =
            (0..world).map(|_| None).collect();
        let t0 = Instant::now();
        driver.scope(|s| {
            for (rank, out) in outcomes.iter_mut().enumerate() {
                let coll = Arc::clone(&coll);
                let comm_pool = Arc::clone(&comm_pool);
                s.spawn(move || {
                    let mut net = zoo::tiny_vgg(4, 3);
                    let mut sync = BucketedGradSync::new(
                        rank,
                        coll,
                        comm_pool,
                        &net,
                        &SyncConfig::default(), // overlap on
                        None,
                        false,
                    );
                    sync.begin(&mut net).unwrap();
                    if rank == straggler {
                        std::thread::sleep(delay);
                    }
                    drive_backward(&net, &mut sync);
                    *out = Some(sync.finish(&mut net));
                });
            }
        });
        assert!(
            t0.elapsed() < Duration::from_secs(20),
            "straggler handling must not degrade into a hang"
        );
        for (rank, o) in outcomes.iter().enumerate() {
            match o {
                Some(Err(e)) => {
                    let msg = format!("{e}");
                    assert!(
                        msg.contains("bucketed gradient sync failed"),
                        "rank {rank}: unexpected error: {msg}"
                    );
                }
                other => panic!("rank {rank} should have failed cleanly, got {other:?}"),
            }
        }
    }

    #[test]
    fn finish_rejects_missing_layers() {
        let mut net = zoo::tiny_vgg(4, 3);
        let coll: Arc<dyn Collective> = Arc::new(DenseRing::new(1));
        let pool = Arc::new(WorkerPool::new(1));
        let mut sync =
            BucketedGradSync::new(0, coll, pool, &net, &SyncConfig::default(), None, false);
        sync.begin(&mut net).unwrap();
        // No grad_ready calls at all: finish must fail loudly.
        assert!(sync.finish(&mut net).is_err());
    }
}
