//! [`DistributedTrainer`]: synchronous data-parallel training over the
//! ring collectives.
//!
//! Each of the `N` replicas is a full
//! [`AdaptiveTrainer`] — its own network
//! copy, SGD state, per-layer compression plan, and its own activation
//! store (optionally a [`BudgetedStore`](ebtrain_dnn::store::BudgetedStore)
//! via [`DistConfig::budget`], composing the PR-3 memory budget with
//! data parallelism: every worker's activation set independently honours
//! the device budget). A step shards the global batch, runs all replicas
//! concurrently on a dedicated persistent pool (one thread per rank),
//! and synchronizes through the [`GradSync`] seam with a per-rank
//! [`BucketedGradSync`]: the flat gradient is
//! partitioned into layer-aligned buckets and each bucket's tagged
//! collective launches **as backward retires it**, overlapping ring
//! communication with the remainder of backward. Because every
//! collective returns bit-identical buffers on every rank and each
//! replica applies the same update, **parameters stay in lock-step** —
//! quantization noise included. In ZeRO mode
//! ([`SyncConfig::zero_shard`]) each rank instead owns 1/N of the
//! optimizer state, updates its parameter shard, and the group
//! all-gathers updated parameters exactly.
//!
//! The σ-model hook: on every collection iteration (the framework's `W`
//! cadence) the trainer reads mean |momentum| (`M̄`, Eq. 8) off the
//! chief replica, the observed gradient RMS off the reduced gradient,
//! and re-picks the *communication* error bound via
//! [`comm_error_bound_for_sigma`] — globally from the full-gradient
//! RMS, then refined **per bucket** from each bucket's own RMS
//! ([`per_bucket_comm_bounds`]) — the same collect → assess → re-bound
//! loop the paper runs for activations, now steering the collective.

use crate::bucketed::{BucketedGradSync, SyncConfig};
use crate::collective::{Collective, CommStats};
use crate::ring::{CompressedRing, DenseRing};
use crate::{DistError, Result};
use ebtrain_core::framework::{FrameworkConfig, IterationRecord};
use ebtrain_core::{
    comm_error_bound_for_sigma, per_bucket_comm_bounds, target_sigma, AdaptiveTrainer,
};
use ebtrain_dnn::network::Network;
use ebtrain_dnn::optimizer::SgdConfig;
use ebtrain_dnn::store::BudgetConfig;
use ebtrain_dnn::train::GradSync;
use ebtrain_dnn::DnnError;
use ebtrain_pool::WorkerPool;
use ebtrain_tensor::Tensor;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Gradient transport selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CommMode {
    /// Exact dense-f32 ring (baseline).
    Dense,
    /// SZ-compressed ring segments.
    Compressed {
        /// Initial absolute error bound for gradient streams.
        error_bound: f32,
        /// Per-worker error-feedback residuals (recommended).
        error_feedback: bool,
        /// Re-pick the bound every collection iteration from observed
        /// gradient statistics (the σ-model hook); `false` keeps
        /// `error_bound` fixed.
        adaptive: bool,
    },
}

impl CommMode {
    /// Compressed mode with paper-style defaults: eb 1e-3, error
    /// feedback on, σ-adaptive on.
    pub fn compressed_default() -> CommMode {
        CommMode::Compressed {
            error_bound: 1e-3,
            error_feedback: true,
            adaptive: true,
        }
    }
}

/// Configuration of a distributed training group.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Number of worker replicas (threads).
    pub world: usize,
    /// Gradient transport.
    pub comm: CommMode,
    /// Per-replica adaptive-framework configuration (activation
    /// compression, collection cadence `W`).
    pub framework: FrameworkConfig,
    /// SGD hyper-parameters (identical on every replica).
    pub sgd: SgdConfig,
    /// When set, every replica stores activations in its own budgeted
    /// arena under this configuration (PR-3 composition).
    pub budget: Option<BudgetConfig>,
    /// Bucketed-sync knobs: bucket size, backward overlap, ZeRO
    /// sharding, straggler deadline, modeled wire.
    pub sync: SyncConfig,
}

impl DistConfig {
    /// Config with `world` workers, the given transport, and framework /
    /// SGD / sync defaults.
    pub fn new(world: usize, comm: CommMode) -> DistConfig {
        DistConfig {
            world,
            comm,
            framework: FrameworkConfig::default(),
            sgd: SgdConfig::default(),
            budget: None,
            sync: SyncConfig::default(),
        }
    }
}

/// Aggregated outcome of one synchronous distributed step.
#[derive(Debug, Clone, Copy)]
pub struct DistStepRecord {
    /// Iteration number (0-based, lock-step across replicas).
    pub iter: usize,
    /// Mean training loss over the global batch.
    pub loss: f32,
    /// Training accuracy over the global batch.
    pub accuracy: f64,
    /// Largest per-replica peak activation-store residency.
    pub peak_store_bytes: usize,
    /// Communication of this step (payload / dense-equivalent bytes,
    /// messages).
    pub comm: CommStats,
    /// Error bound the gradient transport used this step (`None` for
    /// dense).
    pub comm_error_bound: Option<f32>,
    /// Whether this was a collection iteration.
    pub collected: bool,
    /// Largest per-rank sharded optimizer state (0 outside ZeRO mode).
    pub optimizer_shard_bytes: usize,
}

/// Synchronous data-parallel trainer; see the module docs.
pub struct DistributedTrainer {
    replicas: Vec<AdaptiveTrainer>,
    /// One bucketed synchronizer per rank (zipped with `replicas`).
    syncs: Vec<BucketedGradSync>,
    collective: Arc<dyn Collective>,
    /// Per-rank threads the replicas step on.
    pool: WorkerPool,
    world: usize,
    adaptive_comm: bool,
    error_feedback: bool,
    history: Vec<DistStepRecord>,
    /// Registry delta captured around the last [`step`](Self::step) —
    /// the per-step phase breakdown the fig binaries print from.
    last_report: Option<ebtrain_obs::StepReport>,
}

/// Mean |momentum| across all parameters of a network (the global `M̄`
/// the communication σ target uses).
fn momentum_abs_mean(net: &Network) -> f64 {
    let mut sum = 0.0f64;
    let mut count = 0usize;
    net.visit_layers(&mut |layer| {
        for p in layer.params() {
            sum += p.momentum_abs_mean() * p.value.len() as f64;
            count += p.value.len();
        }
    });
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

impl DistributedTrainer {
    /// Build a group of `cfg.world` replicas. `build` constructs one
    /// network per rank and **must** return structurally identical
    /// networks (call the same zoo constructor with the same seed); the
    /// constructor broadcasts rank 0's parameters through the collective
    /// (exact on every transport — only gradient streams are lossy) so
    /// all replicas provably start from identical weights.
    pub fn new(cfg: DistConfig, build: impl FnMut(usize) -> Network) -> Result<DistributedTrainer> {
        let mut build = build;
        let world = cfg.world;
        if world == 0 {
            return Err(DistError::Config("world size must be >= 1".into()));
        }
        let (collective, adaptive_comm, error_feedback): (Arc<dyn Collective>, bool, bool) =
            match cfg.comm {
                CommMode::Dense => (Arc::new(DenseRing::new(world)), false, false),
                CommMode::Compressed {
                    error_bound,
                    error_feedback,
                    adaptive,
                } => (
                    Arc::new(CompressedRing::new(world, error_bound, error_feedback)),
                    adaptive,
                    error_feedback,
                ),
            };
        if cfg.sync.zero_shard && adaptive_comm {
            // With sharded optimizer state no rank holds the full
            // momentum vector, so the global M̄ statistic Eq. 8 needs is
            // simply not observable — reject instead of silently
            // steering the bound from an all-zeros momentum.
            return Err(DistError::Config(
                "ZeRO sharded optimizer is incompatible with the σ-adaptive comm bound \
                 (momentum lives in shards; pin the bound with adaptive: false)"
                    .into(),
            ));
        }
        collective.set_straggler_timeout(cfg.sync.straggler_timeout);
        collective.set_wire_mibps(cfg.sync.wire_mibps);
        let mut replicas = Vec::with_capacity(world);
        let mut param_count = None;
        for rank in 0..world {
            let mut net = build(rank);
            // Identical parameters, independent mask streams: real
            // data-parallel stacks give every device its own RNG state,
            // and correlated dropout across shards measurably distorts
            // gradient statistics.
            net.reseed_stochastic(rank as u64 + 1);
            match param_count {
                None => param_count = Some(net.param_count()),
                Some(c) if c == net.param_count() => {}
                Some(c) => {
                    return Err(DistError::Config(format!(
                        "replica {rank} has {} parameters, replica 0 has {c}",
                        net.param_count()
                    )))
                }
            }
            replicas.push(match &cfg.budget {
                Some(b) => AdaptiveTrainer::new_budgeted(
                    net,
                    cfg.sgd.clone(),
                    cfg.framework.clone(),
                    b.clone(),
                ),
                None => AdaptiveTrainer::new(net, cfg.sgd.clone(), cfg.framework.clone()),
            });
        }
        // The comm pool carries the in-flight bucket collectives. Its
        // threads mostly sleep in ring waits (or the modeled wire), so
        // over-provisioning beyond the core count is cheap and buys
        // overlap; joins inline-run queued tasks, so even a saturated
        // pool cannot deadlock (see `bucketed` module docs).
        let comm_pool = Arc::new(WorkerPool::new((world * 2).max(2)));
        let syncs = replicas
            .iter()
            .enumerate()
            .map(|(rank, t)| {
                BucketedGradSync::new(
                    rank,
                    Arc::clone(&collective),
                    Arc::clone(&comm_pool),
                    t.network(),
                    &cfg.sync,
                    cfg.sync.zero_shard.then(|| cfg.sgd.clone()),
                    rank == 0 && !cfg.sync.zero_shard,
                )
            })
            .collect::<Vec<_>>();
        let mut trainer = DistributedTrainer {
            replicas,
            syncs,
            collective,
            pool: WorkerPool::new(world),
            world,
            adaptive_comm,
            error_feedback,
            history: Vec::new(),
            last_report: None,
        };
        // Sharded optimizer state is real per-rank memory: tell each
        // budgeted store about it for reporting — pinned elsewhere to
        // never charge the *activation* budget.
        for (t, s) in trainer.replicas.iter_mut().zip(&trainer.syncs) {
            t.note_external_store_bytes(s.optimizer_shard_bytes());
        }
        trainer.broadcast_params(0)?;
        Ok(trainer)
    }

    /// Broadcast `root`'s parameters to every replica through the
    /// collective (compressed transports leave all replicas with the
    /// identical decoded copy).
    fn broadcast_params(&mut self, root: usize) -> Result<()> {
        if self.world <= 1 {
            return Ok(());
        }
        let collective = Arc::clone(&self.collective);
        let mut outcomes: Vec<Option<Result<()>>> = (0..self.world).map(|_| None).collect();
        self.pool.scope(|s| {
            for (rank, (trainer, out)) in self
                .replicas
                .iter_mut()
                .zip(outcomes.iter_mut())
                .enumerate()
            {
                let coll = Arc::clone(&collective);
                s.spawn(move || {
                    let run = || -> Result<()> {
                        let net = trainer.network_mut();
                        let mut flat = Vec::new();
                        net.flatten_params_into(&mut flat);
                        coll.broadcast(rank, root, &mut flat)?;
                        net.unflatten_params(&flat).map_err(DistError::Dnn)
                    };
                    let result = catch_unwind(AssertUnwindSafe(run));
                    match result {
                        Ok(r) => {
                            if r.is_err() {
                                coll.abort();
                            }
                            *out = Some(r);
                        }
                        Err(panic) => {
                            coll.abort();
                            resume_unwind(panic);
                        }
                    }
                });
            }
        });
        for o in outcomes {
            o.expect("rank ran")?;
        }
        Ok(())
    }

    /// One synchronous step over a global batch (must divide evenly by
    /// the world size). Shards the batch, steps every replica
    /// concurrently with the gradient collective in its sync hook, and
    /// aggregates the per-replica records.
    pub fn step(&mut self, x: Tensor, labels: &[usize]) -> Result<DistStepRecord> {
        let (n, c, h, w) = x.dims4();
        if n == 0 || n % self.world != 0 {
            return Err(DistError::Config(format!(
                "global batch {n} not divisible by world size {}",
                self.world
            )));
        }
        if labels.len() != n {
            return Err(DistError::Config(format!(
                "{} labels for batch {n}",
                labels.len()
            )));
        }
        let shard = n / self.world;
        let plane = c * h * w;
        let mut shards: Vec<Option<(Tensor, Vec<usize>)>> = (0..self.world)
            .map(|widx| {
                let lo = widx * shard;
                let t = Tensor::from_vec(
                    &[shard, c, h, w],
                    x.data()[lo * plane..(lo + shard) * plane].to_vec(),
                )
                .map_err(|e| DistError::Dnn(DnnError::Tensor(e)))?;
                Ok(Some((t, labels[lo..lo + shard].to_vec())))
            })
            .collect::<Result<_>>()?;

        let stats_before = self.collective.stats();
        let obs_before = ebtrain_obs::snapshot();
        let step_start = std::time::Instant::now();
        let collective = Arc::clone(&self.collective);
        type Outcome = std::result::Result<(IterationRecord, usize), DnnError>;
        let mut outcomes: Vec<Option<Outcome>> = (0..self.world).map(|_| None).collect();
        self.pool.scope(|s| {
            for (((trainer, sync), out), shard_slot) in self
                .replicas
                .iter_mut()
                .zip(self.syncs.iter_mut())
                .zip(outcomes.iter_mut())
                .zip(shards.iter_mut())
            {
                let coll = Arc::clone(&collective);
                let (sx, slabels) = shard_slot.take().expect("shard built above");
                s.spawn(move || {
                    let run = move || -> Outcome {
                        let record =
                            trainer.step_synced(sx, &slabels, Some(sync as &mut dyn GradSync))?;
                        let batch = slabels.len();
                        Ok((record, batch))
                    };
                    match catch_unwind(AssertUnwindSafe(run)) {
                        Ok(r) => {
                            if r.is_err() {
                                // A replica that failed before (or inside)
                                // the collective must not leave peers
                                // blocked in the ring.
                                coll.abort();
                            }
                            *out = Some(r);
                        }
                        Err(panic) => {
                            coll.abort();
                            resume_unwind(panic);
                        }
                    }
                });
            }
        });

        let mut loss_sum = 0.0f64;
        let mut acc_sum = 0.0f64;
        let mut peak = 0usize;
        let mut iter = 0usize;
        let mut collected = false;
        for (rank, o) in outcomes.into_iter().enumerate() {
            let (record, _batch) = o.expect("rank ran").map_err(DistError::Dnn)?;
            loss_sum += record.loss as f64;
            acc_sum += record.accuracy;
            peak = peak.max(record.peak_store_bytes);
            if rank == 0 {
                iter = record.iter;
                collected = record.collected;
            }
        }
        let comm = self.collective.stats().delta_since(&stats_before);
        // Feed the flight recorder before capturing the report, so a
        // tripped obs.anomaly.* counter lands inside this step's delta.
        // The "dist.step" stream is separate from the replicas'
        // "core.step" records (each replica also reported above).
        ebtrain_obs::flight_step(ebtrain_obs::FlightRecord {
            source: "dist.step",
            step: iter as u64,
            loss: loss_sum / self.world as f64,
            step_nanos: step_start.elapsed().as_nanos() as u64,
            comm_bytes: comm.payload_bytes,
            compression_ratio: comm.reduction_ratio(),
            queue_depth_peak: ebtrain_obs::gauge_peak_take("pool.queue_depth"),
            anomalies: 0,
        });
        self.last_report = Some(ebtrain_obs::StepReport::capture_since(&obs_before));
        // The bound the just-completed collectives actually encoded with
        // — captured before the σ-hook re-picks it for the *next* step.
        let used_eb = self.collective.error_bound();

        // The σ-model hook: on collection iterations, re-pick the
        // communication bound from M̄ (Eq. 8's σ target) and the observed
        // gradient RMS — globally, then refined per bucket from each
        // bucket's own RMS. (Unreachable in ZeRO mode: adaptive + ZeRO
        // is rejected at construction and the chief computes no summary.)
        if self.adaptive_comm && collected {
            if let Some(summary) = self.syncs[0].last_summary() {
                let m_avg = momentum_abs_mean(self.replicas[0].network());
                let fw = self.replicas[0].config();
                let (min_eb, max_eb) = (fw.min_eb, fw.max_eb);
                let sigma = target_sigma(m_avg, fw.sigma_fraction);
                if let Some(eb) =
                    comm_error_bound_for_sigma(sigma, summary.rms, self.error_feedback)
                {
                    let eb = (eb as f32).clamp(min_eb, max_eb);
                    self.collective.set_error_bound(eb);
                }
                let bucket_rms = self.syncs[0].last_bucket_rms();
                for (b, bound) in per_bucket_comm_bounds(sigma, bucket_rms, self.error_feedback)
                    .into_iter()
                    .enumerate()
                {
                    self.collective.set_bucket_error_bound(
                        b as u64,
                        bound.map(|e| (e as f32).clamp(min_eb, max_eb)),
                    );
                }
            }
        }

        let record = DistStepRecord {
            iter,
            loss: (loss_sum / self.world as f64) as f32,
            accuracy: acc_sum / self.world as f64,
            peak_store_bytes: peak,
            comm,
            comm_error_bound: used_eb,
            collected,
            optimizer_shard_bytes: self
                .syncs
                .iter()
                .map(|s| s.optimizer_shard_bytes())
                .max()
                .unwrap_or(0),
        };
        self.history.push(record);
        Ok(record)
    }

    /// Number of worker replicas.
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// Registry delta of the last [`step`](Self::step): the
    /// `dist.encode`/`dist.decode` span times, `dist.wire.nanos`/
    /// `dist.wait.nanos` counters, codec activity, and (for budgeted
    /// replicas) membudget residency — one source of truth for per-step
    /// reporting. `None` before the first step.
    pub fn step_report(&self) -> Option<&ebtrain_obs::StepReport> {
        self.last_report.as_ref()
    }

    /// The chief replica (rank 0), e.g. for evaluation.
    pub fn chief(&self) -> &AdaptiveTrainer {
        &self.replicas[0]
    }

    /// Mutable chief access.
    pub fn chief_mut(&mut self) -> &mut AdaptiveTrainer {
        &mut self.replicas[0]
    }

    /// Any replica (panics on out-of-range rank).
    pub fn replica(&self, rank: usize) -> &AdaptiveTrainer {
        &self.replicas[rank]
    }

    /// Evaluate a batch on the chief replica.
    pub fn evaluate(&mut self, x: Tensor, labels: &[usize]) -> Result<(f32, usize)> {
        self.replicas[0].evaluate(x, labels).map_err(DistError::Dnn)
    }

    /// Cumulative collective counters.
    pub fn comm_stats(&self) -> CommStats {
        self.collective.stats()
    }

    /// Current gradient-transport error bound (`None` for dense).
    pub fn comm_error_bound(&self) -> Option<f32> {
        self.collective.error_bound()
    }

    /// Transport name (reporting).
    pub fn comm_name(&self) -> &'static str {
        self.collective.name()
    }

    /// Number of gradient buckets each step synchronizes (identical on
    /// every rank).
    pub fn num_buckets(&self) -> usize {
        self.syncs[0].plan().num_buckets()
    }

    /// The chief rank's bucketed synchronizer (plan, shard bytes,
    /// last-step statistics).
    pub fn chief_sync(&self) -> &BucketedGradSync {
        &self.syncs[0]
    }

    /// Per-step records so far.
    pub fn history(&self) -> &[DistStepRecord] {
        &self.history
    }

    /// Completed iterations (lock-step across replicas).
    pub fn iteration(&self) -> usize {
        self.replicas[0].iteration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebtrain_data::{SynthConfig, SynthImageNet};
    use ebtrain_dnn::network::NetworkBuilder;
    use ebtrain_dnn::zoo;

    fn dataset(seed: u64) -> SynthImageNet {
        SynthImageNet::new(SynthConfig {
            classes: 4,
            image_hw: 32,
            noise: 0.15,
            seed,
        })
    }

    /// BN/dropout-free net: per-shard math equals large-batch math.
    fn plain_net(seed: u64) -> Network {
        let mut b = NetworkBuilder::new("plain", &[3, 32, 32], seed);
        b.conv(8, 3, 1, 1)
            .relu()
            .maxpool(2, 2, 0)
            .conv(16, 3, 1, 1)
            .relu()
            .maxpool(2, 2, 0)
            .linear(4);
        b.build()
    }

    fn quick_fw() -> FrameworkConfig {
        FrameworkConfig {
            w_interval: 4,
            ..FrameworkConfig::default()
        }
    }

    #[test]
    fn dense_group_tracks_single_worker() {
        let data = dataset(51);
        // Single worker, batch 16, via the same AdaptiveTrainer path.
        let mut single = AdaptiveTrainer::new(plain_net(9), SgdConfig::default(), quick_fw());
        let mut cfg = DistConfig::new(2, CommMode::Dense);
        cfg.framework = quick_fw();
        let mut group = DistributedTrainer::new(cfg, |_| plain_net(9)).unwrap();
        for i in 0..3u64 {
            let (x, labels) = data.batch(i * 16, 16);
            let rs = single.step(x.clone(), &labels).unwrap();
            let rg = group.step(x, &labels).unwrap();
            assert!(
                (rs.loss - rg.loss).abs() < 1e-4,
                "iter {i}: {} vs {}",
                rs.loss,
                rg.loss
            );
        }
        let st = group.comm_stats();
        assert_eq!(st.payload_bytes, st.dense_equiv_bytes);
        assert!(st.phases >= 6, "2 phases per step expected: {st:?}");
    }

    #[test]
    fn compressed_replicas_stay_in_lockstep() {
        let data = dataset(7);
        let mut cfg = DistConfig::new(
            3,
            CommMode::Compressed {
                error_bound: 1e-3,
                error_feedback: true,
                adaptive: false,
            },
        );
        cfg.framework = quick_fw();
        let mut group = DistributedTrainer::new(cfg, |_| zoo::tiny_vgg(4, 3)).unwrap();
        for i in 0..3u64 {
            let (x, labels) = data.batch(i * 12, 12);
            let r = group.step(x, &labels).unwrap();
            assert!(r.loss.is_finite());
            assert!(r.comm.payload_bytes > 0);
            assert!(r.comm.payload_bytes < r.comm.dense_equiv_bytes);
        }
        // Bit-identical parameters on every replica despite lossy comm.
        let mut reference: Vec<Vec<f32>> = Vec::new();
        group.replica(0).network().visit_layers(&mut |l| {
            for p in l.params() {
                reference.push(p.value.data().to_vec());
            }
        });
        for rank in 1..group.world_size() {
            let mut i = 0usize;
            group.replica(rank).network().visit_layers(&mut |l| {
                for p in l.params() {
                    assert_eq!(
                        p.value.data(),
                        reference[i].as_slice(),
                        "rank {rank} param {i} diverged"
                    );
                    i += 1;
                }
            });
        }
    }

    #[test]
    fn adaptive_comm_bound_engages_after_momentum_exists() {
        let data = dataset(13);
        let mut cfg = DistConfig::new(2, CommMode::compressed_default());
        cfg.framework = quick_fw();
        let init_eb = 1e-3f32;
        let mut group = DistributedTrainer::new(cfg, |_| plain_net(4)).unwrap();
        assert_eq!(group.comm_error_bound(), Some(init_eb));
        for i in 0..5u64 {
            let (x, labels) = data.batch(i * 8, 8);
            group.step(x, &labels).unwrap();
        }
        // The hook runs after the optimizer step, so momentum exists by
        // the first (iter-0) collection already: the σ target is live
        // from step 2 on.
        let eb = group.comm_error_bound().unwrap();
        assert!(eb > 0.0 && eb != init_eb, "σ hook never engaged: {eb}");
        // History records the bound each step's all_reduce actually
        // used: the first step encoded with the initial bound (the
        // re-pick only applies from the next step on).
        assert_eq!(group.history()[0].comm_error_bound, Some(init_eb));
        let (x, labels) = data.batch(100, 8);
        let r = group.step(x, &labels).unwrap();
        assert_eq!(
            r.comm_error_bound,
            Some(eb),
            "the re-picked bound applies to the next step"
        );
    }

    #[test]
    fn budgeted_replicas_enforce_budget_under_data_parallelism() {
        use ebtrain_dnn::layer::CompressionPlan;
        use ebtrain_dnn::layers::SoftmaxCrossEntropy;
        use ebtrain_dnn::optimizer::Sgd;
        use ebtrain_dnn::store::RawStore;
        use ebtrain_dnn::train::train_step;
        let data = dataset(31);
        // Per-shard raw activation peak, to size a budget below it.
        let raw_peak = {
            let mut net = zoo::tiny_vgg(4, 5);
            let head = SoftmaxCrossEntropy::new();
            let mut opt = Sgd::new(SgdConfig::default());
            let mut store = RawStore::new();
            let plan = CompressionPlan::new();
            let (x, labels) = data.batch(0, 8);
            train_step(
                &mut net, &head, &mut opt, &mut store, &plan, x, &labels, false,
            )
            .unwrap()
            .peak_store_bytes
        };
        let budget = raw_peak / 3;
        let mut cfg = DistConfig::new(2, CommMode::compressed_default());
        cfg.framework = quick_fw();
        cfg.budget = Some(BudgetConfig::with_budget(budget));
        let mut group = DistributedTrainer::new(cfg, |_| zoo::tiny_vgg(4, 5)).unwrap();
        for i in 0..4u64 {
            let (x, labels) = data.batch(i * 16, 16);
            let r = group.step(x, &labels).unwrap();
            assert!(
                r.peak_store_bytes <= budget,
                "iter {i}: peak {} > budget {budget}",
                r.peak_store_bytes
            );
        }
    }

    #[test]
    fn rejects_bad_configurations() {
        assert!(
            DistributedTrainer::new(DistConfig::new(0, CommMode::Dense), |_| plain_net(1)).is_err()
        );
        // Mismatched replicas.
        assert!(
            DistributedTrainer::new(DistConfig::new(2, CommMode::Dense), |rank| {
                if rank == 0 {
                    plain_net(1)
                } else {
                    zoo::tiny_vgg(4, 1)
                }
            })
            .is_err()
        );
        // Indivisible batch.
        let data = dataset(1);
        let mut group =
            DistributedTrainer::new(DistConfig::new(2, CommMode::Dense), |_| plain_net(1)).unwrap();
        let (x, labels) = data.batch(0, 9);
        assert!(group.step(x, &labels).is_err());
    }
}
