//! Ring collectives: the shared mailbox/barrier machinery, the exact
//! dense-f32 baseline, and the SZ-compressed transport with per-worker
//! error feedback.
//!
//! # Ring schedule
//!
//! The gradient splits into `N` plane-aligned segments
//! ([`seg_ranges`]). A classic two-phase ring runs `2(N−1)` hops, every
//! rank sending to `(rank+1) % N`:
//!
//! * **reduce-scatter**, hop `t`: rank `r` sends segment `(r − t) mod N`
//!   (its current partial sum) and adds the received segment
//!   `(r − t − 1) mod N` into its accumulator. After `N−1` hops rank `r`
//!   owns the complete sum of segment `(r + 1) mod N`.
//! * **all-gather**, hop `t`: rank `r` sends segment `(r + 1 − t) mod N`
//!   and installs the received segment `(r − t) mod N`. Received
//!   messages are **forwarded verbatim** on the next hop.
//!
//! # Tagged, bucket-granular operation
//!
//! Every point-to-point message carries a **tag** (the gradient bucket
//! index), and each rank's mailbox is a tag-keyed map — so several
//! tagged collectives may be **in flight concurrently** on one group
//! (one per bucket, launched as backward retires buckets) without their
//! messages interleaving. The untagged [`Collective`] entry points are
//! the `tag = 0` special case.
//!
//! Bucket collectives use the **aligned** entry points
//! (`*_aligned`, segmentation by [`seg_ranges_at`]): a bucket's
//! segments are the whole-tensor segments clipped to the bucket's flat
//! window, so every element keeps the reduction association order it
//! would have had in one whole-tensor sync — which makes bucket-wise
//! dense sync **bit-identical** to the legacy whole-tensor sync, not
//! merely close (f32 addition is commutative but not associative; only
//! an inherited segment map preserves the exact fold). It also gives
//! ZeRO sharding a clean shape: across all buckets, rank `r`'s owned
//! pieces tile exactly the whole-tensor segment `(r + 1) mod N`.
//!
//! # Compressed transport
//!
//! [`CompressedRing`] ships every segment as a self-describing
//! [`TaggedStream`] of its configured [`Codec`] (SZ by default; any
//! registered backend via [`CompressedRing::with_codec`]), with three
//! twists:
//!
//! * **Segment-only encode.** Each rank compresses exactly the segment
//!   it forwards on each hop — never the whole gradient. Segments are
//!   plane-aligned ([`seg_ranges`]), so the per-segment streams keep
//!   the same chunk geometry a whole-gradient frame-indexed stream
//!   would have, at `~1/N` of the old hop-0 encode work per rank.
//! * **All-gather never re-compresses.** The segment owner compresses
//!   its reduced segment once, *adopts its own decoded copy*, and every
//!   later hop forwards the identical bytes — so each segment's final
//!   value decodes from one stream and **all replicas finish
//!   bit-identical**, the property replica-lockstep SGD needs.
//! * **Error feedback.** Each rank keeps a residual vector `e` **per
//!   tag**; before compressing values `v` for a coordinate range it
//!   sends `v + e`, and afterwards stores
//!   `e ← (v + e) − decode(encode(v + e))`. The quantization error a
//!   step rounds away is re-injected the next step, which keeps the
//!   *time-averaged* injected gradient error unbiased (EF-SGD). One
//!   tagged `all_reduce` touches every coordinate of its bucket exactly
//!   once across both phases, so each residual is well-defined.
//!
//! # Failure and straggler handling
//!
//! Any rank failing mid-operation poisons the collective and releases
//! every blocked peer with `Aborted` — no deadlock on worker failure.
//! With a **straggler deadline** set ([`Collective::set_straggler_timeout`])
//! a rank blocked in `recv` past the deadline poisons the group itself,
//! turning an indefinitely-delayed peer into the same clean abort.
//!
//! # Modeled interconnect
//!
//! In-memory message handoff is effectively free, which would hide the
//! wall-clock value of sending fewer bytes. With a wire bandwidth set
//! ([`Collective::set_wire_mibps`]) every send **sleeps**
//! `bytes / bandwidth` before delivery (accounted under the
//! `dist.wire.nanos` registry counter); sleeping releases the core, so
//! overlapped bucket collectives genuinely hide modeled wire time the
//! way comm/compute overlap hides real wire time. Off by default.

use crate::collective::{seg_ranges, seg_ranges_at, Collective, CommStats};
use crate::{DistError, Result};
use ebtrain_codec::{BoundSpec, Codec, SzCodec, TaggedStream};
use ebtrain_sz::DataLayout;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Wait-loop tick: every blocked wait re-checks the poison flag at least
/// this often, so an abort can never be lost to a missed wakeup.
const POISON_TICK: Duration = Duration::from_millis(25);

/// One hop's payload.
#[derive(Clone)]
enum Payload {
    /// Empty segment (vector smaller than the ring).
    Empty,
    /// Raw f32 values (dense transport).
    Dense(Arc<Vec<f32>>),
    /// Independent compressed stream of one segment.
    Stream(Arc<TaggedStream>),
}

/// One point-to-point message.
#[derive(Clone)]
struct Message {
    seg: usize,
    payload: Payload,
    /// Wire bytes this payload costs (recounted on every forward hop).
    wire_bytes: usize,
    /// Bytes a dense f32 transport would have cost for the same hop.
    dense_bytes: usize,
}

/// One rank's mailbox: tag-keyed, capacity 1 **per tag** — concurrent
/// tagged collectives never see each other's messages, while within a
/// tag the ring's hop-by-hop flow control is preserved.
struct Slot {
    cell: Mutex<HashMap<u64, Message>>,
    cv: Condvar,
}

struct BarrierState {
    gen: u64,
    arrived: usize,
}

/// Payload parked by a broadcast root for every peer to copy.
/// Broadcast is the one-time exact parameter sync on every transport,
/// so the payload is always dense (see `CompressedRing::broadcast`).
#[derive(Clone)]
enum BcastPayload {
    Dense(Arc<Vec<f32>>),
}

/// State shared by all ranks of one ring group.
struct RingCore {
    world: usize,
    slots: Vec<Slot>,
    poisoned: AtomicBool,
    barrier: Mutex<BarrierState>,
    barrier_cv: Condvar,
    bcast: Mutex<Option<BcastPayload>>,
    bcast_cv: Condvar,
    stats: Mutex<CommStats>,
    /// Straggler deadline for `recv` (None = wait indefinitely).
    straggler: Mutex<Option<Duration>>,
    /// Modeled wire bandwidth in MiB/s (None = no wire model).
    wire_mibps: Mutex<Option<f64>>,
}

fn aborted() -> DistError {
    DistError::Aborted("a peer failed or aborted the collective".into())
}

impl RingCore {
    fn new(world: usize) -> RingCore {
        RingCore {
            world,
            slots: (0..world)
                .map(|_| Slot {
                    cell: Mutex::new(HashMap::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            poisoned: AtomicBool::new(false),
            barrier: Mutex::new(BarrierState { gen: 0, arrived: 0 }),
            barrier_cv: Condvar::new(),
            bcast: Mutex::new(None),
            bcast_cv: Condvar::new(),
            stats: Mutex::new(CommStats::default()),
            straggler: Mutex::new(None),
            wire_mibps: Mutex::new(None),
        }
    }

    /// Mutate the shared counters under the lock.
    fn stat(&self, f: impl FnOnce(&mut CommStats)) {
        f(&mut self.stats.lock().expect("stats poisoned"));
    }

    fn check(&self) -> Result<()> {
        if self.poisoned.load(Ordering::Acquire) {
            Err(aborted())
        } else {
            Ok(())
        }
    }

    fn poison(&self) {
        let first = !self.poisoned.swap(true, Ordering::AcqRel);
        for s in &self.slots {
            s.cv.notify_all();
        }
        self.barrier_cv.notify_all();
        self.bcast_cv.notify_all();
        if first {
            // Post-mortem: the last N steps before a poisoned
            // collective go to EBTRAIN_FLIGHT (no-op when unset).
            let _ = ebtrain_obs::flight::dump_flight("collective-poisoned");
        }
    }

    /// Deliver `msg` into `to`'s mailbox under `tag` (capacity 1 per
    /// tag: waits until the previous same-tag message was consumed),
    /// account its bytes, and — with the wire model on — sleep the
    /// modeled transmission time first.
    fn send(&self, to: usize, tag: u64, msg: Message) -> Result<()> {
        self.stat(|st| {
            st.messages += 1;
            st.payload_bytes += msg.wire_bytes as u64;
            st.dense_equiv_bytes += msg.dense_bytes as u64;
        });
        let bw = *self.wire_mibps.lock().expect("wire poisoned");
        if let Some(mibps) = bw {
            if mibps > 0.0 && msg.wire_bytes > 0 {
                let nanos = (msg.wire_bytes as f64 / (mibps * 1024.0 * 1024.0) * 1e9) as u64;
                std::thread::sleep(Duration::from_nanos(nanos));
                // The *modeled* transmission time (not the measured
                // sleep, which oversleeps by scheduler jitter). The
                // counter stays the exact modeled sum (pinned by test);
                // the histogram gives the per-message distribution.
                ebtrain_obs::counter_add("dist.wire.nanos", nanos);
                ebtrain_obs::hist_record("dist.wire", nanos);
            }
        }
        let slot = &self.slots[to];
        let mut cell = slot.cell.lock().expect("slot poisoned");
        while cell.contains_key(&tag) {
            self.check()?;
            cell = slot.cv.wait_timeout(cell, POISON_TICK).expect("slot").0;
        }
        self.check()?;
        cell.insert(tag, msg);
        slot.cv.notify_all();
        Ok(())
    }

    /// Take the message addressed to `rank` under `tag`. With a
    /// straggler deadline set, waiting past it poisons the group and
    /// returns a clean `Aborted` — a delayed peer can never hold the
    /// ring hostage.
    fn recv(&self, rank: usize, tag: u64) -> Result<Message> {
        let deadline = self
            .straggler
            .lock()
            .expect("straggler poisoned")
            .map(|t| Instant::now() + t);
        let slot = &self.slots[rank];
        let mut cell = slot.cell.lock().expect("slot poisoned");
        loop {
            if let Some(msg) = cell.remove(&tag) {
                slot.cv.notify_all();
                return Ok(msg);
            }
            self.check()?;
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    drop(cell);
                    self.poison();
                    return Err(DistError::Aborted(
                        "straggler deadline exceeded waiting for a peer's message".into(),
                    ));
                }
            }
            cell = slot.cv.wait_timeout(cell, POISON_TICK).expect("slot").0;
        }
    }

    /// Generation barrier across all ranks.
    fn barrier(&self) -> Result<()> {
        let mut st = self.barrier.lock().expect("barrier poisoned");
        self.check()?;
        let gen = st.gen;
        st.arrived += 1;
        if st.arrived == self.world {
            st.arrived = 0;
            st.gen += 1;
            self.barrier_cv.notify_all();
            return Ok(());
        }
        while st.gen == gen {
            self.check()?;
            st = self
                .barrier_cv
                .wait_timeout(st, POISON_TICK)
                .expect("barrier")
                .0;
        }
        Ok(())
    }

    /// Root side of a broadcast: park the payload (waiting for any
    /// previous broadcast to be fully consumed) and account one delivery
    /// per peer.
    fn bcast_put(&self, payload: BcastPayload, wire_each: usize, dense_each: usize) -> Result<()> {
        let mut cell = self.bcast.lock().expect("bcast poisoned");
        while cell.is_some() {
            self.check()?;
            cell = self.bcast_cv.wait_timeout(cell, POISON_TICK).expect("b").0;
        }
        self.check()?;
        *cell = Some(payload);
        self.bcast_cv.notify_all();
        let peers = (self.world - 1) as u64;
        let mut st = self.stats.lock().expect("stats poisoned");
        st.messages += peers;
        st.payload_bytes += wire_each as u64 * peers;
        st.dense_equiv_bytes += dense_each as u64 * peers;
        st.broadcasts += 1;
        Ok(())
    }

    /// Peer side: clone the parked payload (after the put barrier).
    fn bcast_get(&self) -> Result<BcastPayload> {
        let cell = self.bcast.lock().expect("bcast poisoned");
        self.check()?;
        cell.clone()
            .ok_or_else(|| DistError::Aborted("broadcast payload missing at barrier".into()))
    }

    fn bcast_clear(&self) {
        *self.bcast.lock().expect("bcast poisoned") = None;
        self.bcast_cv.notify_all();
    }

    fn count_phase(&self, rank: usize) {
        if rank == 0 {
            self.stats.lock().expect("stats poisoned").phases += 1;
        }
    }

    /// The whole broadcast protocol, shared by both transports: park
    /// (root) → barrier → copy (peers) → barrier → clear (root). Dense
    /// payload on every transport — broadcast is the one-time exact
    /// parameter sync; only recurring gradient streams are lossy.
    fn dense_broadcast(&self, rank: usize, root: usize, buf: &mut [f32]) -> Result<()> {
        if self.world <= 1 {
            return Ok(());
        }
        if rank == root {
            let bytes = buf.len() * 4;
            self.bcast_put(BcastPayload::Dense(Arc::new(buf.to_vec())), bytes, bytes)?;
        }
        self.barrier()?;
        if rank != root {
            match self.bcast_get()? {
                BcastPayload::Dense(data) if data.len() == buf.len() => {
                    buf.copy_from_slice(&data);
                }
                _ => {
                    self.poison();
                    return Err(DistError::Aborted("broadcast payload mismatch".into()));
                }
            }
        }
        self.barrier()?;
        if rank == root {
            self.bcast_clear();
        }
        Ok(())
    }

    /// Exact (dense f32) ring reduce-scatter under `tag`, over an
    /// explicit segment map (`segs` must tile `[0, buf.len())` in
    /// order; see [`seg_ranges`] / [`seg_ranges_at`]).
    fn dense_reduce_scatter(
        &self,
        rank: usize,
        buf: &mut [f32],
        tag: u64,
        segs: &[Range<usize>],
    ) -> Result<usize> {
        let n = self.world;
        if n <= 1 {
            return Ok(0);
        }
        for t in 0..n - 1 {
            let s_send = (rank + n - t) % n;
            let s_recv = (rank + 2 * n - t - 1) % n;
            let r = segs[s_send].clone();
            let payload = if r.is_empty() {
                Payload::Empty
            } else {
                Payload::Dense(Arc::new(buf[r.clone()].to_vec()))
            };
            self.send(
                (rank + 1) % n,
                tag,
                Message {
                    seg: s_send,
                    payload,
                    wire_bytes: r.len() * 4,
                    dense_bytes: r.len() * 4,
                },
            )?;
            let msg = self.recv(rank, tag)?;
            if msg.seg != s_recv {
                self.poison();
                return Err(DistError::Aborted("ring schedule mismatch".into()));
            }
            let dst = segs[s_recv].clone();
            match msg.payload {
                Payload::Empty => {}
                Payload::Dense(vals) if vals.len() == dst.len() => {
                    for (b, v) in buf[dst].iter_mut().zip(vals.iter()) {
                        *b += v;
                    }
                }
                _ => {
                    self.poison();
                    return Err(DistError::Aborted("unexpected payload".into()));
                }
            }
        }
        self.count_phase(rank);
        Ok((rank + 1) % n)
    }

    /// Exact (dense f32) ring all-gather under `tag` — also the
    /// ZeRO-style parameter gather of lossy transports
    /// ([`Collective::all_gather_exact`]).
    fn dense_all_gather(
        &self,
        rank: usize,
        owned: usize,
        buf: &mut [f32],
        tag: u64,
        segs: &[Range<usize>],
    ) -> Result<()> {
        let n = self.world;
        if n <= 1 {
            return Ok(());
        }
        let mut forward: Option<Message> = None;
        for t in 0..n - 1 {
            let s_send = (rank + 1 + n - t) % n;
            let msg = match forward.take() {
                Some(m) => m,
                None => {
                    debug_assert_eq!(s_send, owned);
                    let r = segs[owned].clone();
                    let payload = if r.is_empty() {
                        Payload::Empty
                    } else {
                        Payload::Dense(Arc::new(buf[r.clone()].to_vec()))
                    };
                    Message {
                        seg: owned,
                        payload,
                        wire_bytes: r.len() * 4,
                        dense_bytes: r.len() * 4,
                    }
                }
            };
            self.send((rank + 1) % n, tag, msg)?;
            let received = self.recv(rank, tag)?;
            let s_recv = (rank + n - t) % n;
            if received.seg != s_recv {
                self.poison();
                return Err(DistError::Aborted("ring schedule mismatch".into()));
            }
            let dst = segs[s_recv].clone();
            match &received.payload {
                Payload::Empty => {}
                Payload::Dense(vals) if vals.len() == dst.len() => {
                    buf[dst].copy_from_slice(vals);
                }
                _ => {
                    self.poison();
                    return Err(DistError::Aborted("unexpected payload".into()));
                }
            }
            if t + 1 < n - 1 {
                forward = Some(received);
            }
        }
        self.count_phase(rank);
        Ok(())
    }
}

/// The exact dense-f32 ring — the communication baseline Fig 12 compares
/// against. Mathematically exact: the only deviation from a serial sum
/// is the fixed ring association order, which is identical on every
/// rank (replicas stay bit-identical).
pub struct DenseRing {
    core: RingCore,
}

impl DenseRing {
    /// Dense ring collective for `world` ranks.
    pub fn new(world: usize) -> DenseRing {
        DenseRing {
            core: RingCore::new(world.max(1)),
        }
    }
}

impl Collective for DenseRing {
    fn world_size(&self) -> usize {
        self.core.world
    }

    fn name(&self) -> &'static str {
        "dense-ring"
    }

    fn broadcast(&self, rank: usize, root: usize, buf: &mut [f32]) -> Result<()> {
        self.core.dense_broadcast(rank, root, buf)
    }

    fn reduce_scatter(&self, rank: usize, buf: &mut [f32]) -> Result<usize> {
        let segs = seg_ranges(buf.len(), self.core.world);
        self.core.dense_reduce_scatter(rank, buf, 0, &segs)
    }

    fn all_gather(&self, rank: usize, owned: usize, buf: &mut [f32]) -> Result<()> {
        let segs = seg_ranges(buf.len(), self.core.world);
        self.core.dense_all_gather(rank, owned, buf, 0, &segs)
    }

    fn reduce_scatter_tagged(&self, rank: usize, buf: &mut [f32], tag: u64) -> Result<usize> {
        let segs = seg_ranges(buf.len(), self.core.world);
        self.core.dense_reduce_scatter(rank, buf, tag, &segs)
    }

    fn all_gather_tagged(
        &self,
        rank: usize,
        owned: usize,
        buf: &mut [f32],
        tag: u64,
    ) -> Result<()> {
        let segs = seg_ranges(buf.len(), self.core.world);
        self.core.dense_all_gather(rank, owned, buf, tag, &segs)
    }

    fn reduce_scatter_aligned(
        &self,
        rank: usize,
        buf: &mut [f32],
        tag: u64,
        start: usize,
        total: usize,
    ) -> Result<usize> {
        let segs = seg_ranges_at(start, buf.len(), total, self.core.world);
        self.core.dense_reduce_scatter(rank, buf, tag, &segs)
    }

    fn all_gather_aligned(
        &self,
        rank: usize,
        owned: usize,
        buf: &mut [f32],
        tag: u64,
        start: usize,
        total: usize,
    ) -> Result<()> {
        let segs = seg_ranges_at(start, buf.len(), total, self.core.world);
        self.core.dense_all_gather(rank, owned, buf, tag, &segs)
    }

    fn all_gather_exact_aligned(
        &self,
        rank: usize,
        owned: usize,
        buf: &mut [f32],
        tag: u64,
        start: usize,
        total: usize,
    ) -> Result<()> {
        self.all_gather_aligned(rank, owned, buf, tag, start, total)
    }

    fn stats(&self) -> CommStats {
        *self.core.stats.lock().expect("stats poisoned")
    }

    fn reset_stats(&self) {
        *self.core.stats.lock().expect("stats poisoned") = CommStats::default();
    }

    fn set_straggler_timeout(&self, timeout: Option<Duration>) {
        *self.core.straggler.lock().expect("straggler poisoned") = timeout;
    }

    fn set_wire_mibps(&self, mibps: Option<f64>) {
        *self.core.wire_mibps.lock().expect("wire poisoned") = mibps;
    }

    fn abort(&self) {
        self.core.poison();
    }
}

/// The compressed ring: segments travel as self-describing codec
/// streams under an absolute error bound, with optional per-rank,
/// per-tag error feedback. See the module docs for the schedule and the
/// bit-identical-replicas argument (which holds for **any** codec:
/// all-gather forwards owner-encoded bytes verbatim, so replicas decode
/// identical streams regardless of backend).
///
/// Encode work is **segment-only**: each rank compresses exactly the
/// segments it forwards, `~1/N` of the gradient per hop, instead of the
/// whole gradient on hop 0.
pub struct CompressedRing {
    core: RingCore,
    codec: Arc<dyn Codec>,
    eb: Mutex<f32>,
    /// Per-bucket bound overrides, keyed by tag (σ-model refinement).
    bucket_ebs: Mutex<HashMap<u64, f32>>,
    error_feedback: bool,
    /// `residuals[rank][tag]` — one EF residual per rank per bucket.
    residuals: Vec<Mutex<HashMap<u64, Vec<f32>>>>,
}

impl CompressedRing {
    /// Compressed ring for `world` ranks at absolute error bound `eb`
    /// (vanilla SZ contract: every decoded value within ±eb), with or
    /// without error feedback.
    pub fn new(world: usize, eb: f32, error_feedback: bool) -> CompressedRing {
        Self::with_codec(world, Arc::new(SzCodec::vanilla()), eb, error_feedback)
    }

    /// Compressed ring over any backend. The bound is resolved as
    /// `BoundSpec::Abs(eb)` per segment; lossless backends ignore it.
    pub fn with_codec(
        world: usize,
        codec: Arc<dyn Codec>,
        eb: f32,
        error_feedback: bool,
    ) -> CompressedRing {
        let world = world.max(1);
        CompressedRing {
            core: RingCore::new(world),
            codec,
            eb: Mutex::new(eb),
            bucket_ebs: Mutex::new(HashMap::new()),
            error_feedback,
            residuals: (0..world).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Whether error feedback is active.
    pub fn error_feedback(&self) -> bool {
        self.error_feedback
    }

    /// The transport's codec.
    pub fn codec_name(&self) -> &'static str {
        self.codec.name()
    }

    /// The bound for `tag`: the per-bucket override if set, else the
    /// global bound.
    fn snapshot_bound(&self, tag: u64) -> BoundSpec {
        let eb = self
            .bucket_ebs
            .lock()
            .expect("bucket eb poisoned")
            .get(&tag)
            .copied()
            .unwrap_or_else(|| *self.eb.lock().expect("eb poisoned"));
        BoundSpec::Abs(eb)
    }

    /// Take the EF residual for `(rank, tag)`, zero-initialized (or
    /// reset) to `len` elements. Taken out of the map so concurrent
    /// tags on one rank don't serialize on each other's residuals.
    fn take_residual(&self, rank: usize, tag: u64, len: usize) -> Vec<f32> {
        let mut map = self.residuals[rank].lock().expect("residual poisoned");
        let mut v = map.remove(&tag).unwrap_or_default();
        if v.len() != len {
            v = vec![0.0; len];
        }
        v
    }

    fn put_residual(&self, rank: usize, tag: u64, v: Vec<f32>) {
        self.residuals[rank]
            .lock()
            .expect("residual poisoned")
            .insert(tag, v);
    }

    fn codec<T>(&self, r: ebtrain_sz::Result<T>) -> Result<T> {
        r.map_err(|e| {
            self.core.poison();
            DistError::Sz(e)
        })
    }

    /// Compressed ring reduce-scatter over an explicit segment map.
    fn rs_segs(
        &self,
        rank: usize,
        buf: &mut [f32],
        tag: u64,
        segs: &[Range<usize>],
    ) -> Result<usize> {
        let n = self.core.world;
        if n <= 1 {
            return Ok(0);
        }
        let len = buf.len();
        let bound = self.snapshot_bound(tag);
        let mut res = if self.error_feedback {
            Some(self.take_residual(rank, tag, len))
        } else {
            None
        };
        for t in 0..n - 1 {
            let s_send = (rank + n - t) % n;
            let s_recv = (rank + 2 * n - t - 1) % n;
            let r = segs[s_send].clone();
            let msg = if r.is_empty() {
                Message {
                    seg: s_send,
                    payload: Payload::Empty,
                    wire_bytes: 0,
                    dense_bytes: 0,
                }
            } else {
                // Segment-only encode: one independent stream for
                // exactly the segment this hop forwards (hop 0 carries
                // raw values, later hops partial sums — same path).
                let enc_span = ebtrain_obs::span!("dist.encode", bytes = r.len() * 4);
                let mut vals = buf[r.clone()].to_vec();
                if let Some(res) = res.as_ref() {
                    for (v, e) in vals.iter_mut().zip(&res[r.clone()]) {
                        *v += *e;
                    }
                }
                let res_slice = res.as_mut().map(|res| &mut res[r.clone()]);
                let stream = self.encode_segment(&vals, &bound, res_slice)?;
                drop(enc_span);
                Message {
                    seg: s_send,
                    wire_bytes: stream.compressed_byte_len(),
                    dense_bytes: r.len() * 4,
                    payload: Payload::Stream(stream),
                }
            };
            self.core.send((rank + 1) % n, tag, msg)?;
            let received = self.core.recv(rank, tag)?;
            if received.seg != s_recv {
                self.core.poison();
                return Err(DistError::Aborted("ring schedule mismatch".into()));
            }
            let dst = segs[s_recv].clone();
            let vals = match received.payload {
                Payload::Empty => Vec::new(),
                Payload::Stream(stream) => {
                    let dec_span =
                        ebtrain_obs::span!("dist.decode", bytes = stream.compressed_byte_len());
                    let vals = self.codec(self.codec.decompress(&stream))?;
                    drop(dec_span);
                    vals
                }
                Payload::Dense(_) => {
                    self.core.poison();
                    return Err(DistError::Aborted("unexpected dense payload".into()));
                }
            };
            if vals.len() != dst.len() {
                self.core.poison();
                return Err(DistError::Aborted("segment length mismatch".into()));
            }
            for (b, v) in buf[dst].iter_mut().zip(vals.iter()) {
                *b += v;
            }
        }
        if let Some(res) = res {
            self.put_residual(rank, tag, res);
        }
        self.core.count_phase(rank);
        Ok((rank + 1) % n)
    }

    /// Compressed ring all-gather over an explicit segment map.
    fn ag_segs(
        &self,
        rank: usize,
        owned: usize,
        buf: &mut [f32],
        tag: u64,
        segs: &[Range<usize>],
    ) -> Result<()> {
        let n = self.core.world;
        if n <= 1 {
            return Ok(());
        }
        let bound = self.snapshot_bound(tag);
        let mut forward: Option<Message> = None;
        for t in 0..n - 1 {
            let s_send = (rank + 1 + n - t) % n;
            let msg = match forward.take() {
                Some(m) => m,
                None => {
                    debug_assert_eq!(s_send, owned);
                    let r = segs[owned].clone();
                    if r.is_empty() {
                        Message {
                            seg: owned,
                            payload: Payload::Empty,
                            wire_bytes: 0,
                            dense_bytes: 0,
                        }
                    } else {
                        // Compress the reduced segment once; adopt the
                        // decoded copy locally so this rank holds exactly
                        // what every peer will decode.
                        let enc_span = ebtrain_obs::span!("dist.encode", bytes = r.len() * 4);
                        let mut vals = buf[r.clone()].to_vec();
                        let mut res = if self.error_feedback {
                            Some(self.take_residual(rank, tag, buf.len()))
                        } else {
                            None
                        };
                        if let Some(res) = res.as_ref() {
                            for (v, e) in vals.iter_mut().zip(&res[r.clone()]) {
                                *v += *e;
                            }
                        }
                        let res_slice = res.as_mut().map(|res| &mut res[r.clone()]);
                        let stream = self.encode_segment(&vals, &bound, res_slice)?;
                        if let Some(res) = res {
                            self.put_residual(rank, tag, res);
                        }
                        let decoded = self.codec(self.codec.decompress(&stream))?;
                        buf[r.clone()].copy_from_slice(&decoded);
                        drop(enc_span);
                        Message {
                            seg: owned,
                            wire_bytes: stream.compressed_byte_len(),
                            dense_bytes: r.len() * 4,
                            payload: Payload::Stream(stream),
                        }
                    }
                }
            };
            self.core.send((rank + 1) % n, tag, msg)?;
            let received = self.core.recv(rank, tag)?;
            let s_recv = (rank + n - t) % n;
            if received.seg != s_recv {
                self.core.poison();
                return Err(DistError::Aborted("ring schedule mismatch".into()));
            }
            let dst = segs[s_recv].clone();
            match &received.payload {
                Payload::Empty => {}
                Payload::Stream(stream) => {
                    let dec_span =
                        ebtrain_obs::span!("dist.decode", bytes = stream.compressed_byte_len());
                    let decoded = self.codec(self.codec.decompress(stream))?;
                    drop(dec_span);
                    if decoded.len() != dst.len() {
                        self.core.poison();
                        return Err(DistError::Aborted("segment length mismatch".into()));
                    }
                    buf[dst].copy_from_slice(&decoded);
                }
                _ => {
                    self.core.poison();
                    return Err(DistError::Aborted("unexpected payload".into()));
                }
            }
            if t + 1 < n - 1 {
                forward = Some(received);
            }
        }
        self.core.count_phase(rank);
        Ok(())
    }

    /// Compress `vals` (one segment) and, under error feedback, fold the
    /// residual bookkeeping: `vals` must already include the residual;
    /// `res[range]` receives `vals − decode(stream)`.
    fn encode_segment(
        &self,
        vals: &[f32],
        bound: &BoundSpec,
        res: Option<&mut [f32]>,
    ) -> Result<Arc<TaggedStream>> {
        let stream = self.codec(self.codec.compress(vals, DataLayout::D1(vals.len()), bound))?;
        if let Some(res) = res {
            let decoded = self.codec(self.codec.decompress(&stream))?;
            for ((r, &v), &d) in res.iter_mut().zip(vals).zip(decoded.iter()) {
                *r = v - d;
            }
        }
        Ok(Arc::new(stream))
    }
}

impl Collective for CompressedRing {
    fn world_size(&self) -> usize {
        self.core.world
    }

    fn name(&self) -> &'static str {
        "compressed-ring"
    }

    /// Broadcast is **exact** (dense payload) even on this transport:
    /// only the recurring gradient *streams* are error-bounded. The
    /// broadcast is a one-time parameter sync, and quantizing it would
    /// start every replica a bounded-but-needless distance from the
    /// reference model (the EF-SGD convention: compress what repeats,
    /// ship the model once, losslessly).
    fn broadcast(&self, rank: usize, root: usize, buf: &mut [f32]) -> Result<()> {
        self.core.dense_broadcast(rank, root, buf)
    }

    fn reduce_scatter(&self, rank: usize, buf: &mut [f32]) -> Result<usize> {
        self.reduce_scatter_tagged(rank, buf, 0)
    }

    fn all_gather(&self, rank: usize, owned: usize, buf: &mut [f32]) -> Result<()> {
        self.all_gather_tagged(rank, owned, buf, 0)
    }

    fn reduce_scatter_tagged(&self, rank: usize, buf: &mut [f32], tag: u64) -> Result<usize> {
        let segs = seg_ranges(buf.len(), self.core.world);
        self.rs_segs(rank, buf, tag, &segs)
    }

    fn all_gather_tagged(
        &self,
        rank: usize,
        owned: usize,
        buf: &mut [f32],
        tag: u64,
    ) -> Result<()> {
        let segs = seg_ranges(buf.len(), self.core.world);
        self.ag_segs(rank, owned, buf, tag, &segs)
    }

    fn reduce_scatter_aligned(
        &self,
        rank: usize,
        buf: &mut [f32],
        tag: u64,
        start: usize,
        total: usize,
    ) -> Result<usize> {
        let segs = seg_ranges_at(start, buf.len(), total, self.core.world);
        self.rs_segs(rank, buf, tag, &segs)
    }

    fn all_gather_aligned(
        &self,
        rank: usize,
        owned: usize,
        buf: &mut [f32],
        tag: u64,
        start: usize,
        total: usize,
    ) -> Result<()> {
        let segs = seg_ranges_at(start, buf.len(), total, self.core.world);
        self.ag_segs(rank, owned, buf, tag, &segs)
    }

    /// ZeRO-style parameter gather: dense f32 payloads even on this
    /// lossy transport — updated parameters ship once, exactly, like
    /// the startup broadcast.
    fn all_gather_exact(&self, rank: usize, owned: usize, buf: &mut [f32], tag: u64) -> Result<()> {
        let segs = seg_ranges(buf.len(), self.core.world);
        self.core.dense_all_gather(rank, owned, buf, tag, &segs)
    }

    fn all_gather_exact_aligned(
        &self,
        rank: usize,
        owned: usize,
        buf: &mut [f32],
        tag: u64,
        start: usize,
        total: usize,
    ) -> Result<()> {
        let segs = seg_ranges_at(start, buf.len(), total, self.core.world);
        self.core.dense_all_gather(rank, owned, buf, tag, &segs)
    }

    fn stats(&self) -> CommStats {
        *self.core.stats.lock().expect("stats poisoned")
    }

    fn reset_stats(&self) {
        *self.core.stats.lock().expect("stats poisoned") = CommStats::default();
    }

    fn set_error_bound(&self, eb: f32) {
        *self.eb.lock().expect("eb poisoned") = eb;
    }

    fn error_bound(&self) -> Option<f32> {
        Some(*self.eb.lock().expect("eb poisoned"))
    }

    fn set_bucket_error_bound(&self, tag: u64, eb: Option<f32>) {
        let mut map = self.bucket_ebs.lock().expect("bucket eb poisoned");
        match eb {
            Some(eb) => {
                map.insert(tag, eb);
            }
            None => {
                map.remove(&tag);
            }
        }
    }

    fn set_straggler_timeout(&self, timeout: Option<Duration>) {
        *self.core.straggler.lock().expect("straggler poisoned") = timeout;
    }

    fn set_wire_mibps(&self, mibps: Option<f64>) {
        *self.core.wire_mibps.lock().expect("wire poisoned") = mibps;
    }

    fn abort(&self) {
        self.core.poison();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebtrain_pool::WorkerPool;

    /// Drive `op` concurrently for every rank over per-rank buffers.
    fn run_ranks<C: Collective + 'static>(
        coll: &Arc<C>,
        bufs: &mut [Vec<f32>],
        op: impl Fn(&C, usize, &mut Vec<f32>) -> Result<()> + Send + Sync,
    ) -> Vec<Result<()>> {
        let world = bufs.len();
        let pool = WorkerPool::new(world);
        let mut outs: Vec<Option<Result<()>>> = (0..world).map(|_| None).collect();
        pool.scope(|s| {
            for (rank, (buf, out)) in bufs.iter_mut().zip(outs.iter_mut()).enumerate() {
                let coll = Arc::clone(coll);
                let op = &op;
                s.spawn(move || {
                    *out = Some(op(&coll, rank, buf));
                });
            }
        });
        outs.into_iter().map(|o| o.expect("rank ran")).collect()
    }

    fn make_bufs(world: usize, len: usize, scale: f32) -> Vec<Vec<f32>> {
        (0..world)
            .map(|r| {
                (0..len)
                    .map(|i| ((i as f32 * 0.013 + r as f32).sin()) * scale)
                    .collect()
            })
            .collect()
    }

    fn exact_mean(bufs: &[Vec<f32>]) -> Vec<f32> {
        let world = bufs.len();
        let len = bufs[0].len();
        (0..len)
            .map(|i| bufs.iter().map(|b| b[i]).sum::<f32>() / world as f32)
            .collect()
    }

    #[test]
    fn dense_ring_all_reduce_averages_exactly() {
        for world in [2usize, 3, 4] {
            let len = crate::SEG_ALIGN * world + 123;
            let mut bufs = make_bufs(world, len, 1.0);
            let expect = exact_mean(&bufs);
            let coll = Arc::new(DenseRing::new(world));
            let results = run_ranks(&coll, &mut bufs, |c, r, b| c.all_reduce(r, b));
            for r in results {
                r.unwrap();
            }
            for (rank, b) in bufs.iter().enumerate() {
                for (i, (x, y)) in b.iter().zip(&expect).enumerate() {
                    assert!(
                        (x - y).abs() <= 1e-5 * y.abs().max(1.0),
                        "world {world} rank {rank} elem {i}: {x} vs {y}"
                    );
                }
            }
            // All ranks bit-identical.
            for b in &bufs[1..] {
                assert_eq!(b, &bufs[0]);
            }
            let st = coll.stats();
            assert_eq!(st.payload_bytes, st.dense_equiv_bytes);
            assert!(st.messages > 0);
        }
    }

    #[test]
    fn compressed_ring_stays_within_error_bound_and_ranks_agree() {
        let world = 4;
        let eb = 1e-3f32;
        let len = crate::SEG_ALIGN * world + 777;
        let mut bufs = make_bufs(world, len, 1.0);
        let expect = exact_mean(&bufs);
        let coll = Arc::new(CompressedRing::new(world, eb, false));
        for r in run_ranks(&coll, &mut bufs, |c, r, b| c.all_reduce(r, b)) {
            r.unwrap();
        }
        // Without error feedback: scatter-phase error ≤ eb after the
        // final averaging, plus the single gather quantization ≤ eb.
        let tol = 2.0 * eb + 1e-6;
        for (rank, b) in bufs.iter().enumerate() {
            for (i, (x, y)) in b.iter().zip(&expect).enumerate() {
                assert!(
                    (x - y).abs() <= tol,
                    "rank {rank} elem {i}: {x} vs {y} (tol {tol})"
                );
            }
        }
        for b in &bufs[1..] {
            assert_eq!(b, &bufs[0], "replicas must finish bit-identical");
        }
        let st = coll.stats();
        assert!(
            st.payload_bytes < st.dense_equiv_bytes,
            "compressed transport should beat dense: {st:?}"
        );
        assert_eq!(st.phases, 2);
    }

    #[test]
    fn error_feedback_keeps_time_average_unbiased() {
        // Repeatedly all-reduce the same vectors. With EF the residual
        // re-injects what quantization rounded away, so the *mean* of
        // the outputs over steps converges to the exact mean much
        // tighter than any single step's bound.
        let world = 3;
        let eb = 1e-2f32; // coarse on purpose
        let len = crate::SEG_ALIGN + 37;
        let base = make_bufs(world, len, 1.0);
        let expect = exact_mean(&base);
        let coll = Arc::new(CompressedRing::new(world, eb, true));
        let steps = 24;
        let mut accum = vec![0.0f64; len];
        for _ in 0..steps {
            let mut bufs = base.clone();
            for r in run_ranks(&coll, &mut bufs, |c, r, b| c.all_reduce(r, b)) {
                r.unwrap();
            }
            for (a, v) in accum.iter_mut().zip(&bufs[0]) {
                *a += *v as f64;
            }
        }
        let mean_err: f64 = accum
            .iter()
            .zip(&expect)
            .map(|(a, &e)| (a / steps as f64 - e as f64).abs())
            .sum::<f64>()
            / len as f64;
        // A persistent bias would keep mean_err near the single-step
        // quantization error (~eb/2 on average); EF must beat it well.
        assert!(
            mean_err < eb as f64 / 4.0,
            "time-averaged error {mean_err} not unbiased (eb {eb})"
        );
    }

    #[test]
    fn broadcast_synchronizes_all_ranks_exactly() {
        // Exact on BOTH transports: broadcast is the one-time parameter
        // sync; only gradient streams are error-bounded.
        let world = 4;
        let len = 5000;
        for compressed in [false, true] {
            let mut bufs = make_bufs(world, len, 1.0);
            let root_vals = bufs[2].clone();
            let coll: Arc<dyn Collective> = if compressed {
                Arc::new(CompressedRing::new(world, 1e-4, false))
            } else {
                Arc::new(DenseRing::new(world))
            };
            let pool = WorkerPool::new(world);
            pool.scope(|s| {
                for (rank, buf) in bufs.iter_mut().enumerate() {
                    let coll = Arc::clone(&coll);
                    s.spawn(move || coll.broadcast(rank, 2, buf).unwrap());
                }
            });
            for (rank, b) in bufs.iter().enumerate() {
                assert_eq!(
                    b, &root_vals,
                    "rank {rank} diverged (compressed={compressed})"
                );
            }
            assert_eq!(coll.stats().broadcasts, 1);
        }
    }

    #[test]
    fn small_vectors_leave_trailing_segments_empty_but_still_reduce() {
        let world = 4;
        let len = 100; // far below SEG_ALIGN * world
        let mut bufs = make_bufs(world, len, 1.0);
        let expect = exact_mean(&bufs);
        let coll = Arc::new(CompressedRing::new(world, 1e-3, true));
        for r in run_ranks(&coll, &mut bufs, |c, r, b| c.all_reduce(r, b)) {
            r.unwrap();
        }
        for b in &bufs {
            for (x, y) in b.iter().zip(&expect) {
                assert!((x - y).abs() <= 2e-3 + 1e-6, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn abort_releases_blocked_peers() {
        let world = 3;
        let coll = Arc::new(DenseRing::new(world));
        let pool = WorkerPool::new(world);
        let mut outcomes: Vec<Option<Result<()>>> = (0..world).map(|_| None).collect();
        pool.scope(|s| {
            for (rank, out) in outcomes.iter_mut().enumerate() {
                let coll = Arc::clone(&coll);
                s.spawn(move || {
                    if rank == 2 {
                        // This rank never joins the collective.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        coll.abort();
                        *out = Some(Err(aborted()));
                    } else {
                        let mut buf = vec![1.0f32; 9000];
                        *out = Some(coll.all_reduce(rank, &mut buf));
                    }
                });
            }
        });
        for (rank, o) in outcomes.iter().enumerate() {
            assert!(
                matches!(o, Some(Err(DistError::Aborted(_)))),
                "rank {rank} should have aborted: {o:?}"
            );
        }
    }

    #[test]
    fn frame_indexed_streams_still_decode_single_segments() {
        // The ring now encodes segment-only streams, but the codec's
        // frame index remains the contract that lets other consumers
        // (the budgeted store's frame-indexed decode) bill and decode a
        // single segment of a chunked stream without touching its
        // neighbours — keep the property pinned here where the segment
        // geometry lives.
        use crate::collective::seg_planes;
        let world = 4;
        let len = crate::SEG_ALIGN * 8;
        let vals: Vec<f32> = (0..len).map(|i| (i as f32 * 0.001).sin()).collect();
        let codec = SzCodec::vanilla();
        let per = seg_planes(len, world);
        let stream = codec
            .compress_chunked(&vals, DataLayout::D1(len), &BoundSpec::Abs(1e-3), per)
            .unwrap();
        let wire = codec.partial_wire_cost(&stream, &(0..per)).unwrap();
        assert!(
            wire < stream.compressed_byte_len(),
            "hop-0 accounting should not charge the whole stream"
        );
        // And the frame-indexed decode of that segment matches the slice
        // of a full decode (the receiver-side path).
        let full = codec.decompress(&stream).unwrap();
        let (part, stats) = codec
            .decompress_planes(&stream, DataLayout::D1(len), 0..per)
            .unwrap();
        assert_eq!(part, full[..per * crate::SEG_ALIGN]);
        assert!(stats.partial, "receiver must not pay a whole decode");
    }

    #[test]
    fn lossless_codec_ring_matches_dense_exactly() {
        // The transport is codec-agnostic: with a bit-exact backend the
        // compressed ring must reproduce the dense ring's result to the
        // bit (same association order, zero injected error) — and the
        // hop-0 shared-stream path degrades to per-segment streams since
        // byteplane has no frame index.
        use ebtrain_codec::ByteplaneCodec;
        let world = 3;
        let len = crate::SEG_ALIGN * world + 321;
        let mut dense_bufs = make_bufs(world, len, 1.0);
        let mut exact_bufs = dense_bufs.clone();
        let dense = Arc::new(DenseRing::new(world));
        for r in run_ranks(&dense, &mut dense_bufs, |c, r, b| c.all_reduce(r, b)) {
            r.unwrap();
        }
        let coll = Arc::new(CompressedRing::with_codec(
            world,
            Arc::new(ByteplaneCodec),
            1e-3, // ignored by a lossless backend
            false,
        ));
        assert_eq!(coll.codec_name(), "byteplane");
        for r in run_ranks(&coll, &mut exact_bufs, |c, r, b| c.all_reduce(r, b)) {
            r.unwrap();
        }
        for (rank, (a, b)) in dense_bufs.iter().zip(&exact_bufs).enumerate() {
            assert_eq!(a, b, "rank {rank} diverged from the dense result");
        }
        // Lossless f32 payloads cannot beat dense by much, but the
        // accounting must still be self-consistent.
        let st = coll.stats();
        assert!(st.payload_bytes > 0 && st.dense_equiv_bytes > 0);
    }

    #[test]
    fn concurrent_tagged_all_reduces_do_not_interleave() {
        // Two buckets in flight at once on every rank: each (rank, tag)
        // pair runs on its own thread, so hops of different tags race
        // through the same mailboxes. Tag-keyed cells must keep the
        // streams separate and both reductions exact.
        let world = 3;
        let len = crate::SEG_ALIGN + 11;
        let tags = [7u64, 40];
        let mut bufs: Vec<Vec<Vec<f32>>> = tags
            .iter()
            .map(|&tg| make_bufs(world, len, 1.0 + tg as f32))
            .collect();
        let expect: Vec<Vec<f32>> = bufs.iter().map(|b| exact_mean(b)).collect();
        let coll = Arc::new(DenseRing::new(world));
        let pool = WorkerPool::new(world * tags.len());
        pool.scope(|s| {
            for (ti, per_tag) in bufs.iter_mut().enumerate() {
                let tag = tags[ti];
                for (rank, buf) in per_tag.iter_mut().enumerate() {
                    let coll = Arc::clone(&coll);
                    s.spawn(move || coll.all_reduce_tagged(rank, buf, tag).unwrap());
                }
            }
        });
        for (ti, per_tag) in bufs.iter().enumerate() {
            for (rank, b) in per_tag.iter().enumerate() {
                for (i, (x, y)) in b.iter().zip(&expect[ti]).enumerate() {
                    assert!(
                        (x - y).abs() <= 1e-5 * y.abs().max(1.0),
                        "tag {} rank {rank} elem {i}: {x} vs {y}",
                        tags[ti]
                    );
                }
            }
        }
    }

    #[test]
    fn straggler_deadline_turns_a_delayed_rank_into_a_clean_abort() {
        // Rank 2 never shows up within the deadline: the waiting ranks
        // must poison the group and return Aborted — not hang.
        let world = 3;
        let coll = Arc::new(DenseRing::new(world));
        coll.set_straggler_timeout(Some(Duration::from_millis(60)));
        let pool = WorkerPool::new(world);
        let mut outcomes: Vec<Option<Result<()>>> = (0..world).map(|_| None).collect();
        pool.scope(|s| {
            for (rank, out) in outcomes.iter_mut().enumerate() {
                let coll = Arc::clone(&coll);
                s.spawn(move || {
                    if rank == 2 {
                        std::thread::sleep(Duration::from_millis(400));
                    }
                    let mut buf = vec![1.0f32; 9000];
                    *out = Some(coll.all_reduce(rank, &mut buf));
                });
            }
        });
        for (rank, o) in outcomes.iter().enumerate() {
            assert!(
                matches!(o, Some(Err(DistError::Aborted(_)))),
                "rank {rank} should have aborted cleanly: {o:?}"
            );
        }
    }

    #[test]
    fn per_bucket_bound_overrides_the_global_bound() {
        // The same data reduced under tag 1 (coarse override) must ship
        // fewer payload bytes than under tag 0 (tight global bound).
        let world = 2;
        let len = crate::SEG_ALIGN * 2;
        let coll = Arc::new(CompressedRing::new(world, 1e-5, false));
        coll.set_bucket_error_bound(1, Some(1e-1));
        let mut tight = make_bufs(world, len, 1.0);
        for r in run_ranks(&coll, &mut tight, |c, r, b| c.all_reduce_tagged(r, b, 0)) {
            r.unwrap();
        }
        let after_tight = coll.stats();
        let mut coarse = make_bufs(world, len, 1.0);
        for r in run_ranks(&coll, &mut coarse, |c, r, b| c.all_reduce_tagged(r, b, 1)) {
            r.unwrap();
        }
        let coarse_delta = coll.stats().delta_since(&after_tight);
        assert!(
            coarse_delta.payload_bytes < after_tight.payload_bytes,
            "coarse bucket bound should compress harder: {} vs {}",
            coarse_delta.payload_bytes,
            after_tight.payload_bytes
        );
        // Clearing the override falls back to the global bound.
        coll.set_bucket_error_bound(1, None);
        let before = coll.stats();
        let mut again = make_bufs(world, len, 1.0);
        for r in run_ranks(&coll, &mut again, |c, r, b| c.all_reduce_tagged(r, b, 1)) {
            r.unwrap();
        }
        let d = coll.stats().delta_since(&before);
        assert_eq!(d.payload_bytes, after_tight.payload_bytes);
    }

    #[test]
    fn exact_all_gather_preserves_owned_segments_bitwise() {
        // The ZeRO parameter gather: owners' values must arrive at every
        // peer bit-exactly even on the lossy transport.
        let world = 3;
        let len = crate::SEG_ALIGN * world;
        let coll = Arc::new(CompressedRing::new(world, 1e-2, false));
        let mut bufs = make_bufs(world, len, 1.0);
        let segs = seg_ranges(len, world);
        // Pretend each rank already owns segment (rank + 1) % world with
        // final values; gather must replicate them exactly.
        let owned_vals: Vec<Vec<f32>> = (0..world)
            .map(|r| bufs[r][segs[(r + 1) % world].clone()].to_vec())
            .collect();
        let results = run_ranks(&coll, &mut bufs, |c, r, b| {
            c.all_gather_exact(r, (r + 1) % world, b, 9)
        });
        for r in results {
            r.unwrap();
        }
        for (rank, b) in bufs.iter().enumerate() {
            for (owner, vals) in owned_vals.iter().enumerate() {
                let seg = (owner + 1) % world;
                assert_eq!(
                    &b[segs[seg].clone()],
                    vals.as_slice(),
                    "rank {rank} segment {seg} must match owner {owner} bit-exactly"
                );
            }
        }
    }

    /// `dist.wire.nanos` is a process-global registry counter; the two
    /// wire-model tests serialize on this lock so their deltas never
    /// include each other's sends.
    static WIRE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn wire_model_accounts_modeled_nanos() {
        let _wire = WIRE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        ebtrain_obs::set_metrics_enabled(true);
        let world = 2;
        let len = crate::SEG_ALIGN * 2;
        let coll = Arc::new(DenseRing::new(world));
        // Very fast modeled wire: sleeps stay in the microseconds.
        coll.set_wire_mibps(Some(50_000.0));
        let before = ebtrain_obs::snapshot();
        let mut bufs = make_bufs(world, len, 1.0);
        for r in run_ranks(&coll, &mut bufs, |c, r, b| c.all_reduce(r, b)) {
            r.unwrap();
        }
        let d = ebtrain_obs::snapshot().delta_since(&before);
        assert!(
            d.counter("dist.wire.nanos") > 0,
            "wire model must account sleep time"
        );
        coll.set_wire_mibps(None);
        let before = ebtrain_obs::snapshot();
        let mut bufs = make_bufs(world, len, 1.0);
        for r in run_ranks(&coll, &mut bufs, |c, r, b| c.all_reduce(r, b)) {
            r.unwrap();
        }
        let d = ebtrain_obs::snapshot().delta_since(&before);
        assert_eq!(d.counter("dist.wire.nanos"), 0, "model off: no wire time");
    }

    /// Pins the counter migration: the registry's `dist.wire.nanos`
    /// delta equals the *modeled* value computed from message count and
    /// size — exactly what the retired `CommStats::wire_nanos` field
    /// accumulated — not the (jittery) measured sleep.
    #[test]
    fn registry_wire_nanos_match_modeled_wire() {
        let _wire = WIRE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        ebtrain_obs::set_metrics_enabled(true);
        let world = 2;
        // Two aligned segments of equal size: every message carries
        // exactly SEG_ALIGN dense f32 values.
        let len = crate::SEG_ALIGN * 2;
        let mibps = 50_000.0;
        let coll = Arc::new(DenseRing::new(world));
        coll.set_wire_mibps(Some(mibps));
        let stats_before = coll.stats();
        let before = ebtrain_obs::snapshot();
        let mut bufs = make_bufs(world, len, 1.0);
        for r in run_ranks(&coll, &mut bufs, |c, r, b| c.all_reduce(r, b)) {
            r.unwrap();
        }
        let comm = coll.stats().delta_since(&stats_before);
        let d = ebtrain_obs::snapshot().delta_since(&before);
        // world=2 all-reduce: each rank sends 1 reduce-scatter + 1
        // all-gather message of one segment each.
        assert_eq!(comm.messages, 4);
        let per_msg_bytes = crate::SEG_ALIGN * 4;
        assert_eq!(comm.payload_bytes, comm.messages * per_msg_bytes as u64);
        let per_msg_nanos = (per_msg_bytes as f64 / (mibps * 1024.0 * 1024.0) * 1e9) as u64;
        assert_eq!(
            d.counter("dist.wire.nanos"),
            comm.messages * per_msg_nanos,
            "registry wire nanos must equal the modeled per-message value"
        );
    }
}
