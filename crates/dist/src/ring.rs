//! Ring collectives: the shared mailbox/barrier machinery, the exact
//! dense-f32 baseline, and the SZ-compressed transport with per-worker
//! error feedback.
//!
//! # Ring schedule
//!
//! The gradient splits into `N` plane-aligned segments
//! ([`seg_ranges`]). A classic two-phase ring runs `2(N−1)` hops, every
//! rank sending to `(rank+1) % N`:
//!
//! * **reduce-scatter**, hop `t`: rank `r` sends segment `(r − t) mod N`
//!   (its current partial sum) and adds the received segment
//!   `(r − t − 1) mod N` into its accumulator. After `N−1` hops rank `r`
//!   owns the complete sum of segment `(r + 1) mod N`.
//! * **all-gather**, hop `t`: rank `r` sends segment `(r + 1 − t) mod N`
//!   and installs the received segment `(r − t) mod N`. Received
//!   messages are **forwarded verbatim** on the next hop.
//!
//! # Compressed transport
//!
//! [`CompressedRing`] ships every segment as a self-describing
//! [`TaggedStream`] of its configured [`Codec`] (SZ by default; any
//! registered backend via [`CompressedRing::with_codec`]), with three
//! twists:
//!
//! * **Hop 0 is frame-indexed** when the codec supports it
//!   ([`Codec::supports_frame_index`]). The first scatter hop transmits
//!   raw gradient values, so the sender compresses its *whole* gradient
//!   once as a chunked stream whose frame geometry equals the ring
//!   segmentation, and the receiver decodes **only the frames covering
//!   the sent segment** via [`Codec::decompress_planes`]. The wire cost
//!   counted ([`Codec::partial_wire_cost`]) is the shared overhead plus
//!   exactly those frames. Codecs without a frame index ship hop 0 as
//!   independent per-segment streams, like later hops.
//! * **All-gather never re-compresses.** The segment owner compresses
//!   its reduced segment once, *adopts its own decoded copy*, and every
//!   later hop forwards the identical bytes — so each segment's final
//!   value decodes from one stream and **all replicas finish
//!   bit-identical**, the property replica-lockstep SGD needs.
//! * **Error feedback.** Each rank keeps a residual vector `e`; before
//!   compressing values `v` for a coordinate range it sends `v + e`, and
//!   afterwards stores `e ← (v + e) − decode(encode(v + e))`. The
//!   quantization error a step rounds away is re-injected the next step,
//!   which keeps the *time-averaged* injected gradient error unbiased
//!   (EF-SGD). One `all_reduce` touches every coordinate exactly once
//!   across both phases, so the residual is well-defined.
//!
//! Any rank failing mid-operation poisons the collective and releases
//! every blocked peer with `Aborted` — no deadlock on worker failure.

use crate::collective::{seg_planes, seg_ranges, Collective, CommStats};
use crate::{DistError, Result};
use ebtrain_codec::{BoundSpec, Codec, SzCodec, TaggedStream};
use ebtrain_sz::DataLayout;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Wait-loop tick: every blocked wait re-checks the poison flag at least
/// this often, so an abort can never be lost to a missed wakeup.
const POISON_TICK: Duration = Duration::from_millis(25);

/// One hop's payload.
#[derive(Clone)]
enum Payload {
    /// Empty segment (vector smaller than the ring).
    Empty,
    /// Raw f32 values (dense transport).
    Dense(Arc<Vec<f32>>),
    /// Independent compressed stream of one segment.
    Stream(Arc<TaggedStream>),
    /// Plane range of a shared whole-gradient stream (hop 0, codecs with
    /// a frame index): the receiver frame-decodes only `planes`.
    SharedStream {
        stream: Arc<TaggedStream>,
        planes: Range<usize>,
    },
}

/// One point-to-point message.
#[derive(Clone)]
struct Message {
    seg: usize,
    payload: Payload,
    /// Wire bytes this payload costs (recounted on every forward hop).
    wire_bytes: usize,
    /// Bytes a dense f32 transport would have cost for the same hop.
    dense_bytes: usize,
}

struct Slot {
    cell: Mutex<Option<Message>>,
    cv: Condvar,
}

struct BarrierState {
    gen: u64,
    arrived: usize,
}

/// Payload parked by a broadcast root for every peer to copy.
/// Broadcast is the one-time exact parameter sync on every transport,
/// so the payload is always dense (see `CompressedRing::broadcast`).
#[derive(Clone)]
enum BcastPayload {
    Dense(Arc<Vec<f32>>),
}

/// State shared by all ranks of one ring group.
struct RingCore {
    world: usize,
    slots: Vec<Slot>,
    poisoned: AtomicBool,
    barrier: Mutex<BarrierState>,
    barrier_cv: Condvar,
    bcast: Mutex<Option<BcastPayload>>,
    bcast_cv: Condvar,
    stats: Mutex<CommStats>,
}

fn aborted() -> DistError {
    DistError::Aborted("a peer failed or aborted the collective".into())
}

impl RingCore {
    fn new(world: usize) -> RingCore {
        RingCore {
            world,
            slots: (0..world)
                .map(|_| Slot {
                    cell: Mutex::new(None),
                    cv: Condvar::new(),
                })
                .collect(),
            poisoned: AtomicBool::new(false),
            barrier: Mutex::new(BarrierState { gen: 0, arrived: 0 }),
            barrier_cv: Condvar::new(),
            bcast: Mutex::new(None),
            bcast_cv: Condvar::new(),
            stats: Mutex::new(CommStats::default()),
        }
    }

    fn check(&self) -> Result<()> {
        if self.poisoned.load(Ordering::Acquire) {
            Err(aborted())
        } else {
            Ok(())
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        for s in &self.slots {
            s.cv.notify_all();
        }
        self.barrier_cv.notify_all();
        self.bcast_cv.notify_all();
    }

    /// Deliver `msg` into `to`'s mailbox (capacity 1: waits until the
    /// previous message was consumed) and account its bytes.
    fn send(&self, to: usize, msg: Message) -> Result<()> {
        {
            let mut st = self.stats.lock().expect("stats poisoned");
            st.messages += 1;
            st.payload_bytes += msg.wire_bytes as u64;
            st.dense_equiv_bytes += msg.dense_bytes as u64;
        }
        let slot = &self.slots[to];
        let mut cell = slot.cell.lock().expect("slot poisoned");
        while cell.is_some() {
            self.check()?;
            cell = slot.cv.wait_timeout(cell, POISON_TICK).expect("slot").0;
        }
        self.check()?;
        *cell = Some(msg);
        slot.cv.notify_all();
        Ok(())
    }

    /// Take the message addressed to `rank`.
    fn recv(&self, rank: usize) -> Result<Message> {
        let slot = &self.slots[rank];
        let mut cell = slot.cell.lock().expect("slot poisoned");
        loop {
            if let Some(msg) = cell.take() {
                slot.cv.notify_all();
                return Ok(msg);
            }
            self.check()?;
            cell = slot.cv.wait_timeout(cell, POISON_TICK).expect("slot").0;
        }
    }

    /// Generation barrier across all ranks.
    fn barrier(&self) -> Result<()> {
        let mut st = self.barrier.lock().expect("barrier poisoned");
        self.check()?;
        let gen = st.gen;
        st.arrived += 1;
        if st.arrived == self.world {
            st.arrived = 0;
            st.gen += 1;
            self.barrier_cv.notify_all();
            return Ok(());
        }
        while st.gen == gen {
            self.check()?;
            st = self
                .barrier_cv
                .wait_timeout(st, POISON_TICK)
                .expect("barrier")
                .0;
        }
        Ok(())
    }

    /// Root side of a broadcast: park the payload (waiting for any
    /// previous broadcast to be fully consumed) and account one delivery
    /// per peer.
    fn bcast_put(&self, payload: BcastPayload, wire_each: usize, dense_each: usize) -> Result<()> {
        let mut cell = self.bcast.lock().expect("bcast poisoned");
        while cell.is_some() {
            self.check()?;
            cell = self.bcast_cv.wait_timeout(cell, POISON_TICK).expect("b").0;
        }
        self.check()?;
        *cell = Some(payload);
        self.bcast_cv.notify_all();
        let peers = (self.world - 1) as u64;
        let mut st = self.stats.lock().expect("stats poisoned");
        st.messages += peers;
        st.payload_bytes += wire_each as u64 * peers;
        st.dense_equiv_bytes += dense_each as u64 * peers;
        st.broadcasts += 1;
        Ok(())
    }

    /// Peer side: clone the parked payload (after the put barrier).
    fn bcast_get(&self) -> Result<BcastPayload> {
        let cell = self.bcast.lock().expect("bcast poisoned");
        self.check()?;
        cell.clone()
            .ok_or_else(|| DistError::Aborted("broadcast payload missing at barrier".into()))
    }

    fn bcast_clear(&self) {
        *self.bcast.lock().expect("bcast poisoned") = None;
        self.bcast_cv.notify_all();
    }

    fn count_phase(&self, rank: usize) {
        if rank == 0 {
            self.stats.lock().expect("stats poisoned").phases += 1;
        }
    }

    /// The whole broadcast protocol, shared by both transports: park
    /// (root) → barrier → copy (peers) → barrier → clear (root). Dense
    /// payload on every transport — broadcast is the one-time exact
    /// parameter sync; only recurring gradient streams are lossy.
    fn dense_broadcast(&self, rank: usize, root: usize, buf: &mut [f32]) -> Result<()> {
        if self.world <= 1 {
            return Ok(());
        }
        if rank == root {
            let bytes = buf.len() * 4;
            self.bcast_put(BcastPayload::Dense(Arc::new(buf.to_vec())), bytes, bytes)?;
        }
        self.barrier()?;
        if rank != root {
            match self.bcast_get()? {
                BcastPayload::Dense(data) if data.len() == buf.len() => {
                    buf.copy_from_slice(&data);
                }
                _ => {
                    self.poison();
                    return Err(DistError::Aborted("broadcast payload mismatch".into()));
                }
            }
        }
        self.barrier()?;
        if rank == root {
            self.bcast_clear();
        }
        Ok(())
    }
}

/// The exact dense-f32 ring — the communication baseline Fig 12 compares
/// against. Mathematically exact: the only deviation from a serial sum
/// is the fixed ring association order, which is identical on every
/// rank (replicas stay bit-identical).
pub struct DenseRing {
    core: RingCore,
}

impl DenseRing {
    /// Dense ring collective for `world` ranks.
    pub fn new(world: usize) -> DenseRing {
        DenseRing {
            core: RingCore::new(world.max(1)),
        }
    }
}

impl Collective for DenseRing {
    fn world_size(&self) -> usize {
        self.core.world
    }

    fn name(&self) -> &'static str {
        "dense-ring"
    }

    fn broadcast(&self, rank: usize, root: usize, buf: &mut [f32]) -> Result<()> {
        self.core.dense_broadcast(rank, root, buf)
    }

    fn reduce_scatter(&self, rank: usize, buf: &mut [f32]) -> Result<usize> {
        let n = self.core.world;
        if n <= 1 {
            return Ok(0);
        }
        let segs = seg_ranges(buf.len(), n);
        for t in 0..n - 1 {
            let s_send = (rank + n - t) % n;
            let s_recv = (rank + 2 * n - t - 1) % n;
            let r = segs[s_send].clone();
            let payload = if r.is_empty() {
                Payload::Empty
            } else {
                Payload::Dense(Arc::new(buf[r.clone()].to_vec()))
            };
            self.core.send(
                (rank + 1) % n,
                Message {
                    seg: s_send,
                    payload,
                    wire_bytes: r.len() * 4,
                    dense_bytes: r.len() * 4,
                },
            )?;
            let msg = self.core.recv(rank)?;
            if msg.seg != s_recv {
                self.core.poison();
                return Err(DistError::Aborted("ring schedule mismatch".into()));
            }
            let dst = segs[s_recv].clone();
            match msg.payload {
                Payload::Empty => {}
                Payload::Dense(vals) if vals.len() == dst.len() => {
                    for (b, v) in buf[dst].iter_mut().zip(vals.iter()) {
                        *b += v;
                    }
                }
                _ => {
                    self.core.poison();
                    return Err(DistError::Aborted("unexpected payload".into()));
                }
            }
        }
        self.core.count_phase(rank);
        Ok((rank + 1) % n)
    }

    fn all_gather(&self, rank: usize, owned: usize, buf: &mut [f32]) -> Result<()> {
        let n = self.core.world;
        if n <= 1 {
            return Ok(());
        }
        let segs = seg_ranges(buf.len(), n);
        let mut forward: Option<Message> = None;
        for t in 0..n - 1 {
            let s_send = (rank + 1 + n - t) % n;
            let msg = match forward.take() {
                Some(m) => m,
                None => {
                    debug_assert_eq!(s_send, owned);
                    let r = segs[owned].clone();
                    let payload = if r.is_empty() {
                        Payload::Empty
                    } else {
                        Payload::Dense(Arc::new(buf[r.clone()].to_vec()))
                    };
                    Message {
                        seg: owned,
                        payload,
                        wire_bytes: r.len() * 4,
                        dense_bytes: r.len() * 4,
                    }
                }
            };
            self.core.send((rank + 1) % n, msg)?;
            let received = self.core.recv(rank)?;
            let s_recv = (rank + n - t) % n;
            if received.seg != s_recv {
                self.core.poison();
                return Err(DistError::Aborted("ring schedule mismatch".into()));
            }
            let dst = segs[s_recv].clone();
            match &received.payload {
                Payload::Empty => {}
                Payload::Dense(vals) if vals.len() == dst.len() => {
                    buf[dst].copy_from_slice(vals);
                }
                _ => {
                    self.core.poison();
                    return Err(DistError::Aborted("unexpected payload".into()));
                }
            }
            if t + 1 < n - 1 {
                forward = Some(received);
            }
        }
        self.core.count_phase(rank);
        Ok(())
    }

    fn stats(&self) -> CommStats {
        *self.core.stats.lock().expect("stats poisoned")
    }

    fn reset_stats(&self) {
        *self.core.stats.lock().expect("stats poisoned") = CommStats::default();
    }

    fn abort(&self) {
        self.core.poison();
    }
}

/// Per-rank error-feedback state.
struct Residual {
    values: Vec<f32>,
}

/// The compressed ring: segments travel as self-describing codec
/// streams under an absolute error bound, with optional per-rank error
/// feedback. See the module docs for the schedule and the
/// bit-identical-replicas argument (which holds for **any** codec:
/// all-gather forwards owner-encoded bytes verbatim, so replicas decode
/// identical streams regardless of backend).
///
/// Codecs with a frame index ([`Codec::supports_frame_index`]) get the
/// frame-indexed hop 0 (one shared whole-gradient stream, receivers
/// decode only their segment's frames); others fall back to independent
/// per-segment streams on every hop.
pub struct CompressedRing {
    core: RingCore,
    codec: Arc<dyn Codec>,
    eb: Mutex<f32>,
    error_feedback: bool,
    residuals: Vec<Mutex<Residual>>,
}

impl CompressedRing {
    /// Compressed ring for `world` ranks at absolute error bound `eb`
    /// (vanilla SZ contract: every decoded value within ±eb), with or
    /// without error feedback.
    pub fn new(world: usize, eb: f32, error_feedback: bool) -> CompressedRing {
        Self::with_codec(world, Arc::new(SzCodec::vanilla()), eb, error_feedback)
    }

    /// Compressed ring over any backend. The bound is resolved as
    /// `BoundSpec::Abs(eb)` per segment; lossless backends ignore it.
    pub fn with_codec(
        world: usize,
        codec: Arc<dyn Codec>,
        eb: f32,
        error_feedback: bool,
    ) -> CompressedRing {
        let world = world.max(1);
        CompressedRing {
            core: RingCore::new(world),
            codec,
            eb: Mutex::new(eb),
            error_feedback,
            residuals: (0..world)
                .map(|_| Mutex::new(Residual { values: Vec::new() }))
                .collect(),
        }
    }

    /// Whether error feedback is active.
    pub fn error_feedback(&self) -> bool {
        self.error_feedback
    }

    /// The transport's codec.
    pub fn codec_name(&self) -> &'static str {
        self.codec.name()
    }

    fn snapshot_bound(&self) -> BoundSpec {
        BoundSpec::Abs(*self.eb.lock().expect("eb poisoned"))
    }

    fn codec<T>(&self, r: ebtrain_sz::Result<T>) -> Result<T> {
        r.map_err(|e| {
            self.core.poison();
            DistError::Sz(e)
        })
    }

    /// Compress `vals` (one segment) and, under error feedback, fold the
    /// residual bookkeeping: `vals` must already include the residual;
    /// `res[range]` receives `vals − decode(stream)`.
    fn encode_segment(
        &self,
        vals: &[f32],
        bound: &BoundSpec,
        res: Option<&mut [f32]>,
    ) -> Result<Arc<TaggedStream>> {
        let stream = self.codec(self.codec.compress(vals, DataLayout::D1(vals.len()), bound))?;
        if let Some(res) = res {
            let decoded = self.codec(self.codec.decompress(&stream))?;
            for ((r, &v), &d) in res.iter_mut().zip(vals).zip(decoded.iter()) {
                *r = v - d;
            }
        }
        Ok(Arc::new(stream))
    }
}

impl Collective for CompressedRing {
    fn world_size(&self) -> usize {
        self.core.world
    }

    fn name(&self) -> &'static str {
        "compressed-ring"
    }

    /// Broadcast is **exact** (dense payload) even on this transport:
    /// only the recurring gradient *streams* are error-bounded. The
    /// broadcast is a one-time parameter sync, and quantizing it would
    /// start every replica a bounded-but-needless distance from the
    /// reference model (the EF-SGD convention: compress what repeats,
    /// ship the model once, losslessly).
    fn broadcast(&self, rank: usize, root: usize, buf: &mut [f32]) -> Result<()> {
        self.core.dense_broadcast(rank, root, buf)
    }

    fn reduce_scatter(&self, rank: usize, buf: &mut [f32]) -> Result<usize> {
        let n = self.core.world;
        if n <= 1 {
            return Ok(0);
        }
        let len = buf.len();
        let segs = seg_ranges(len, n);
        let per = seg_planes(len, n);
        let n_planes = len.div_ceil(crate::SEG_ALIGN);
        let bound = self.snapshot_bound();
        let mut res = self.residuals[rank].lock().expect("residual poisoned");
        if self.error_feedback && res.values.len() != len {
            res.values = vec![0.0; len];
        }
        for t in 0..n - 1 {
            let s_send = (rank + n - t) % n;
            let s_recv = (rank + 2 * n - t - 1) % n;
            let r = segs[s_send].clone();
            let msg = if r.is_empty() {
                Message {
                    seg: s_send,
                    payload: Payload::Empty,
                    wire_bytes: 0,
                    dense_bytes: 0,
                }
            } else if t == 0 && self.codec.supports_frame_index() {
                // Hop 0, frame-indexed codecs: raw gradient values —
                // compress the whole vector once, chunked so frames ==
                // ring segments, and ship (logically) only this
                // segment's frames; the receiver decodes just those via
                // the frame index. Codecs without this capability take
                // the independent-segment branch below instead.
                let mut tmp = buf.to_vec();
                if self.error_feedback {
                    for (v, e) in tmp[r.clone()].iter_mut().zip(&res.values[r.clone()]) {
                        *v += *e;
                    }
                }
                let plane_range = (s_send * per).min(n_planes)..((s_send + 1) * per).min(n_planes);
                let stream = Arc::new(self.codec(self.codec.compress_chunked(
                    &tmp,
                    DataLayout::D1(len),
                    &bound,
                    per,
                ))?);
                if self.error_feedback {
                    let (decoded, _) = self.codec(self.codec.decompress_planes(
                        &stream,
                        DataLayout::D1(len),
                        plane_range.clone(),
                    ))?;
                    for ((e, &v), &d) in res.values[r.clone()]
                        .iter_mut()
                        .zip(&tmp[r.clone()])
                        .zip(decoded.iter())
                    {
                        *e = v - d;
                    }
                }
                // Wire cost: shared overhead (tag, header, codebook)
                // plus only the frames covering this segment.
                let wire_bytes = self
                    .codec
                    .partial_wire_cost(&stream, &plane_range)
                    .unwrap_or_else(|| stream.compressed_byte_len());
                Message {
                    seg: s_send,
                    payload: Payload::SharedStream {
                        stream,
                        planes: plane_range,
                    },
                    wire_bytes,
                    dense_bytes: r.len() * 4,
                }
            } else {
                // Later hops carry partial sums (and hop 0 of
                // non-frame-indexed codecs carries raw values): an
                // independent stream per segment.
                let mut vals = buf[r.clone()].to_vec();
                if self.error_feedback {
                    for (v, e) in vals.iter_mut().zip(&res.values[r.clone()]) {
                        *v += *e;
                    }
                }
                let res_slice: Option<&mut [f32]> = if self.error_feedback {
                    Some(&mut res.values[r.clone()])
                } else {
                    None
                };
                let stream = self.encode_segment(&vals, &bound, res_slice)?;
                Message {
                    seg: s_send,
                    wire_bytes: stream.compressed_byte_len(),
                    dense_bytes: r.len() * 4,
                    payload: Payload::Stream(stream),
                }
            };
            self.core.send((rank + 1) % n, msg)?;
            let received = self.core.recv(rank)?;
            if received.seg != s_recv {
                self.core.poison();
                return Err(DistError::Aborted("ring schedule mismatch".into()));
            }
            let dst = segs[s_recv].clone();
            let vals = match received.payload {
                Payload::Empty => Vec::new(),
                Payload::SharedStream { stream, planes } => {
                    let (vals, _) = self.codec(self.codec.decompress_planes(
                        &stream,
                        DataLayout::D1(len),
                        planes,
                    ))?;
                    vals
                }
                Payload::Stream(stream) => self.codec(self.codec.decompress(&stream))?,
                Payload::Dense(_) => {
                    self.core.poison();
                    return Err(DistError::Aborted("unexpected dense payload".into()));
                }
            };
            if vals.len() != dst.len() {
                self.core.poison();
                return Err(DistError::Aborted("segment length mismatch".into()));
            }
            for (b, v) in buf[dst].iter_mut().zip(vals.iter()) {
                *b += v;
            }
        }
        self.core.count_phase(rank);
        Ok((rank + 1) % n)
    }

    fn all_gather(&self, rank: usize, owned: usize, buf: &mut [f32]) -> Result<()> {
        let n = self.core.world;
        if n <= 1 {
            return Ok(());
        }
        let segs = seg_ranges(buf.len(), n);
        let bound = self.snapshot_bound();
        let mut forward: Option<Message> = None;
        for t in 0..n - 1 {
            let s_send = (rank + 1 + n - t) % n;
            let msg = match forward.take() {
                Some(m) => m,
                None => {
                    debug_assert_eq!(s_send, owned);
                    let r = segs[owned].clone();
                    if r.is_empty() {
                        Message {
                            seg: owned,
                            payload: Payload::Empty,
                            wire_bytes: 0,
                            dense_bytes: 0,
                        }
                    } else {
                        // Compress the reduced segment once; adopt the
                        // decoded copy locally so this rank holds exactly
                        // what every peer will decode.
                        let mut res = self.residuals[rank].lock().expect("residual");
                        let mut vals = buf[r.clone()].to_vec();
                        if self.error_feedback {
                            if res.values.len() != buf.len() {
                                res.values = vec![0.0; buf.len()];
                            }
                            for (v, e) in vals.iter_mut().zip(&res.values[r.clone()]) {
                                *v += *e;
                            }
                        }
                        let res_slice: Option<&mut [f32]> = if self.error_feedback {
                            Some(&mut res.values[r.clone()])
                        } else {
                            None
                        };
                        let stream = self.encode_segment(&vals, &bound, res_slice)?;
                        let decoded = self.codec(self.codec.decompress(&stream))?;
                        buf[r.clone()].copy_from_slice(&decoded);
                        Message {
                            seg: owned,
                            wire_bytes: stream.compressed_byte_len(),
                            dense_bytes: r.len() * 4,
                            payload: Payload::Stream(stream),
                        }
                    }
                }
            };
            self.core.send((rank + 1) % n, msg)?;
            let received = self.core.recv(rank)?;
            let s_recv = (rank + n - t) % n;
            if received.seg != s_recv {
                self.core.poison();
                return Err(DistError::Aborted("ring schedule mismatch".into()));
            }
            let dst = segs[s_recv].clone();
            match &received.payload {
                Payload::Empty => {}
                Payload::Stream(stream) => {
                    let decoded = self.codec(self.codec.decompress(stream))?;
                    if decoded.len() != dst.len() {
                        self.core.poison();
                        return Err(DistError::Aborted("segment length mismatch".into()));
                    }
                    buf[dst].copy_from_slice(&decoded);
                }
                _ => {
                    self.core.poison();
                    return Err(DistError::Aborted("unexpected payload".into()));
                }
            }
            if t + 1 < n - 1 {
                forward = Some(received);
            }
        }
        self.core.count_phase(rank);
        Ok(())
    }

    fn stats(&self) -> CommStats {
        *self.core.stats.lock().expect("stats poisoned")
    }

    fn reset_stats(&self) {
        *self.core.stats.lock().expect("stats poisoned") = CommStats::default();
    }

    fn set_error_bound(&self, eb: f32) {
        *self.eb.lock().expect("eb poisoned") = eb;
    }

    fn error_bound(&self) -> Option<f32> {
        Some(*self.eb.lock().expect("eb poisoned"))
    }

    fn abort(&self) {
        self.core.poison();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebtrain_pool::WorkerPool;

    /// Drive `op` concurrently for every rank over per-rank buffers.
    fn run_ranks<C: Collective + 'static>(
        coll: &Arc<C>,
        bufs: &mut [Vec<f32>],
        op: impl Fn(&C, usize, &mut Vec<f32>) -> Result<()> + Send + Sync,
    ) -> Vec<Result<()>> {
        let world = bufs.len();
        let pool = WorkerPool::new(world);
        let mut outs: Vec<Option<Result<()>>> = (0..world).map(|_| None).collect();
        pool.scope(|s| {
            for (rank, (buf, out)) in bufs.iter_mut().zip(outs.iter_mut()).enumerate() {
                let coll = Arc::clone(coll);
                let op = &op;
                s.spawn(move || {
                    *out = Some(op(&coll, rank, buf));
                });
            }
        });
        outs.into_iter().map(|o| o.expect("rank ran")).collect()
    }

    fn make_bufs(world: usize, len: usize, scale: f32) -> Vec<Vec<f32>> {
        (0..world)
            .map(|r| {
                (0..len)
                    .map(|i| ((i as f32 * 0.013 + r as f32).sin()) * scale)
                    .collect()
            })
            .collect()
    }

    fn exact_mean(bufs: &[Vec<f32>]) -> Vec<f32> {
        let world = bufs.len();
        let len = bufs[0].len();
        (0..len)
            .map(|i| bufs.iter().map(|b| b[i]).sum::<f32>() / world as f32)
            .collect()
    }

    #[test]
    fn dense_ring_all_reduce_averages_exactly() {
        for world in [2usize, 3, 4] {
            let len = crate::SEG_ALIGN * world + 123;
            let mut bufs = make_bufs(world, len, 1.0);
            let expect = exact_mean(&bufs);
            let coll = Arc::new(DenseRing::new(world));
            let results = run_ranks(&coll, &mut bufs, |c, r, b| c.all_reduce(r, b));
            for r in results {
                r.unwrap();
            }
            for (rank, b) in bufs.iter().enumerate() {
                for (i, (x, y)) in b.iter().zip(&expect).enumerate() {
                    assert!(
                        (x - y).abs() <= 1e-5 * y.abs().max(1.0),
                        "world {world} rank {rank} elem {i}: {x} vs {y}"
                    );
                }
            }
            // All ranks bit-identical.
            for b in &bufs[1..] {
                assert_eq!(b, &bufs[0]);
            }
            let st = coll.stats();
            assert_eq!(st.payload_bytes, st.dense_equiv_bytes);
            assert!(st.messages > 0);
        }
    }

    #[test]
    fn compressed_ring_stays_within_error_bound_and_ranks_agree() {
        let world = 4;
        let eb = 1e-3f32;
        let len = crate::SEG_ALIGN * world + 777;
        let mut bufs = make_bufs(world, len, 1.0);
        let expect = exact_mean(&bufs);
        let coll = Arc::new(CompressedRing::new(world, eb, false));
        for r in run_ranks(&coll, &mut bufs, |c, r, b| c.all_reduce(r, b)) {
            r.unwrap();
        }
        // Without error feedback: scatter-phase error ≤ eb after the
        // final averaging, plus the single gather quantization ≤ eb.
        let tol = 2.0 * eb + 1e-6;
        for (rank, b) in bufs.iter().enumerate() {
            for (i, (x, y)) in b.iter().zip(&expect).enumerate() {
                assert!(
                    (x - y).abs() <= tol,
                    "rank {rank} elem {i}: {x} vs {y} (tol {tol})"
                );
            }
        }
        for b in &bufs[1..] {
            assert_eq!(b, &bufs[0], "replicas must finish bit-identical");
        }
        let st = coll.stats();
        assert!(
            st.payload_bytes < st.dense_equiv_bytes,
            "compressed transport should beat dense: {st:?}"
        );
        assert_eq!(st.phases, 2);
    }

    #[test]
    fn error_feedback_keeps_time_average_unbiased() {
        // Repeatedly all-reduce the same vectors. With EF the residual
        // re-injects what quantization rounded away, so the *mean* of
        // the outputs over steps converges to the exact mean much
        // tighter than any single step's bound.
        let world = 3;
        let eb = 1e-2f32; // coarse on purpose
        let len = crate::SEG_ALIGN + 37;
        let base = make_bufs(world, len, 1.0);
        let expect = exact_mean(&base);
        let coll = Arc::new(CompressedRing::new(world, eb, true));
        let steps = 24;
        let mut accum = vec![0.0f64; len];
        for _ in 0..steps {
            let mut bufs = base.clone();
            for r in run_ranks(&coll, &mut bufs, |c, r, b| c.all_reduce(r, b)) {
                r.unwrap();
            }
            for (a, v) in accum.iter_mut().zip(&bufs[0]) {
                *a += *v as f64;
            }
        }
        let mean_err: f64 = accum
            .iter()
            .zip(&expect)
            .map(|(a, &e)| (a / steps as f64 - e as f64).abs())
            .sum::<f64>()
            / len as f64;
        // A persistent bias would keep mean_err near the single-step
        // quantization error (~eb/2 on average); EF must beat it well.
        assert!(
            mean_err < eb as f64 / 4.0,
            "time-averaged error {mean_err} not unbiased (eb {eb})"
        );
    }

    #[test]
    fn broadcast_synchronizes_all_ranks_exactly() {
        // Exact on BOTH transports: broadcast is the one-time parameter
        // sync; only gradient streams are error-bounded.
        let world = 4;
        let len = 5000;
        for compressed in [false, true] {
            let mut bufs = make_bufs(world, len, 1.0);
            let root_vals = bufs[2].clone();
            let coll: Arc<dyn Collective> = if compressed {
                Arc::new(CompressedRing::new(world, 1e-4, false))
            } else {
                Arc::new(DenseRing::new(world))
            };
            let pool = WorkerPool::new(world);
            pool.scope(|s| {
                for (rank, buf) in bufs.iter_mut().enumerate() {
                    let coll = Arc::clone(&coll);
                    s.spawn(move || coll.broadcast(rank, 2, buf).unwrap());
                }
            });
            for (rank, b) in bufs.iter().enumerate() {
                assert_eq!(
                    b, &root_vals,
                    "rank {rank} diverged (compressed={compressed})"
                );
            }
            assert_eq!(coll.stats().broadcasts, 1);
        }
    }

    #[test]
    fn small_vectors_leave_trailing_segments_empty_but_still_reduce() {
        let world = 4;
        let len = 100; // far below SEG_ALIGN * world
        let mut bufs = make_bufs(world, len, 1.0);
        let expect = exact_mean(&bufs);
        let coll = Arc::new(CompressedRing::new(world, 1e-3, true));
        for r in run_ranks(&coll, &mut bufs, |c, r, b| c.all_reduce(r, b)) {
            r.unwrap();
        }
        for b in &bufs {
            for (x, y) in b.iter().zip(&expect) {
                assert!((x - y).abs() <= 2e-3 + 1e-6, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn abort_releases_blocked_peers() {
        let world = 3;
        let coll = Arc::new(DenseRing::new(world));
        let pool = WorkerPool::new(world);
        let mut outcomes: Vec<Option<Result<()>>> = (0..world).map(|_| None).collect();
        pool.scope(|s| {
            for (rank, out) in outcomes.iter_mut().enumerate() {
                let coll = Arc::clone(&coll);
                s.spawn(move || {
                    if rank == 2 {
                        // This rank never joins the collective.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        coll.abort();
                        *out = Some(Err(aborted()));
                    } else {
                        let mut buf = vec![1.0f32; 9000];
                        *out = Some(coll.all_reduce(rank, &mut buf));
                    }
                });
            }
        });
        for (rank, o) in outcomes.iter().enumerate() {
            assert!(
                matches!(o, Some(Err(DistError::Aborted(_)))),
                "rank {rank} should have aborted: {o:?}"
            );
        }
    }

    #[test]
    fn hop0_wire_bytes_exclude_other_segments_frames() {
        // One rank's hop-0 message must cost (tag+header+codebook) plus
        // only its own segment's frames — substantially less than the
        // whole stream when the gradient spans many segments.
        let world = 4;
        let len = crate::SEG_ALIGN * 8;
        let vals: Vec<f32> = (0..len).map(|i| (i as f32 * 0.001).sin()).collect();
        let codec = SzCodec::vanilla();
        let per = seg_planes(len, world);
        let stream = codec
            .compress_chunked(&vals, DataLayout::D1(len), &BoundSpec::Abs(1e-3), per)
            .unwrap();
        let wire = codec.partial_wire_cost(&stream, &(0..per)).unwrap();
        assert!(
            wire < stream.compressed_byte_len(),
            "hop-0 accounting should not charge the whole stream"
        );
        // And the frame-indexed decode of that segment matches the slice
        // of a full decode (the receiver-side path).
        let full = codec.decompress(&stream).unwrap();
        let (part, stats) = codec
            .decompress_planes(&stream, DataLayout::D1(len), 0..per)
            .unwrap();
        assert_eq!(part, full[..per * crate::SEG_ALIGN]);
        assert!(stats.partial, "receiver must not pay a whole decode");
    }

    #[test]
    fn lossless_codec_ring_matches_dense_exactly() {
        // The transport is codec-agnostic: with a bit-exact backend the
        // compressed ring must reproduce the dense ring's result to the
        // bit (same association order, zero injected error) — and the
        // hop-0 shared-stream path degrades to per-segment streams since
        // byteplane has no frame index.
        use ebtrain_codec::ByteplaneCodec;
        let world = 3;
        let len = crate::SEG_ALIGN * world + 321;
        let mut dense_bufs = make_bufs(world, len, 1.0);
        let mut exact_bufs = dense_bufs.clone();
        let dense = Arc::new(DenseRing::new(world));
        for r in run_ranks(&dense, &mut dense_bufs, |c, r, b| c.all_reduce(r, b)) {
            r.unwrap();
        }
        let coll = Arc::new(CompressedRing::with_codec(
            world,
            Arc::new(ByteplaneCodec),
            1e-3, // ignored by a lossless backend
            false,
        ));
        assert_eq!(coll.codec_name(), "byteplane");
        for r in run_ranks(&coll, &mut exact_bufs, |c, r, b| c.all_reduce(r, b)) {
            r.unwrap();
        }
        for (rank, (a, b)) in dense_bufs.iter().zip(&exact_bufs).enumerate() {
            assert_eq!(a, b, "rank {rank} diverged from the dense result");
        }
        // Lossless f32 payloads cannot beat dense by much, but the
        // accounting must still be self-consistent.
        let st = coll.stats();
        assert!(st.payload_bytes > 0 && st.dense_equiv_bytes > 0);
    }
}
