//! # ebtrain-dist
//!
//! **Data-parallel compressed training**: N shared-nothing worker
//! replicas on a persistent thread pool (`ebtrain-pool`), synchronizing
//! gradients through an in-memory [`Collective`] — with the headline
//! implementation being a **chunked ring all-reduce whose segments
//! travel as Z2 SZ-compressed streams**.
//!
//! The paper (conf_ppopp_JinLST21) compresses *stashed activations* with
//! an error bound chosen so the induced gradient noise stays below an
//! acceptable σ (Eq. 8/9). This crate applies the same discipline to the
//! other tensor that dominates scale-out training: the **gradient on the
//! communication path**. The σ-model hook
//! ([`comm_error_bound_for_sigma`](ebtrain_core::model::comm_error_bound_for_sigma))
//! picks the collective's error bound from observed gradient statistics
//! exactly the way the activation controller picks per-layer bounds, and
//! per-worker **error-feedback residuals** keep the bounded quantization
//! error from biasing convergence (the classic EF-SGD construction:
//! whatever the codec rounded away this step is re-injected next step).
//!
//! Module map:
//!
//! * [`collective`] — the [`Collective`] trait (`broadcast`,
//!   `reduce_scatter`, `all_gather`, `all_reduce`), communication-byte
//!   accounting, and the ring segment geometry (plane-aligned so ring
//!   segments coincide with Z2 chunk frames);
//! * [`ring`] — the tag-keyed mailbox/barrier machinery and the two
//!   implementations: [`ring::DenseRing`] (exact f32 baseline) and
//!   [`ring::CompressedRing`] (SZ-compressed segments + per-bucket
//!   error feedback; **segment-only encode** — each rank compresses
//!   exactly the segments it forwards);
//! * [`bucketed`] — [`bucketed::BucketedGradSync`]: the per-rank
//!   driver that partitions the flat gradient into layer-aligned
//!   buckets ([`ebtrain_dnn::BucketPlan`]), launches one tagged
//!   collective per bucket as backward retires it (overlapping ring
//!   communication with the rest of backward), and optionally runs the
//!   ZeRO-style sharded optimizer (`reduce_scatter` + owned-shard SGD +
//!   exact parameter all-gather);
//! * [`trainer`] — [`trainer::DistributedTrainer`]: one
//!   [`AdaptiveTrainer`](ebtrain_core::AdaptiveTrainer) per replica
//!   (each with its own activation store — optionally a budgeted one, so
//!   the PR-3 memory manager composes with data parallelism), stepping
//!   in lock-step on the worker pool.
//!
//! Design notes and the error-feedback math live in `DESIGN.md` §7; the
//! scaling experiment is `fig12_dist_scaling` in `ebtrain-bench`.

pub mod bucketed;
pub mod collective;
pub mod ring;
pub mod trainer;

pub use bucketed::{BucketedGradSync, SyncConfig};
pub use collective::{seg_ranges, Collective, CommStats, SEG_ALIGN};
pub use ring::{CompressedRing, DenseRing};
pub use trainer::{CommMode, DistConfig, DistStepRecord, DistributedTrainer};

/// Errors surfaced by collectives and the distributed trainer.
#[derive(Debug)]
pub enum DistError {
    /// Invalid configuration (world size, batch not divisible, ...).
    Config(String),
    /// The collective was poisoned — some rank failed or panicked and
    /// every blocked peer was released with this error.
    Aborted(String),
    /// Codec failure on the communication path.
    Sz(ebtrain_sz::SzError),
    /// Propagated training-substrate error.
    Dnn(ebtrain_dnn::DnnError),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Config(m) => write!(f, "dist config error: {m}"),
            DistError::Aborted(m) => write!(f, "collective aborted: {m}"),
            DistError::Sz(e) => write!(f, "codec error on comm path: {e}"),
            DistError::Dnn(e) => write!(f, "training error: {e}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<ebtrain_sz::SzError> for DistError {
    fn from(e: ebtrain_sz::SzError) -> Self {
        DistError::Sz(e)
    }
}

impl From<ebtrain_dnn::DnnError> for DistError {
    fn from(e: ebtrain_dnn::DnnError) -> Self {
        DistError::Dnn(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DistError>;
