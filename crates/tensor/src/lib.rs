//! # ebtrain-tensor
//!
//! Dense row-major `f32` tensor substrate for the `ebtrain` workspace.
//!
//! The training framework in the paper stores and compresses *activation
//! tensors* (NCHW layout); everything in this crate exists to make the
//! forward/backward convolution pipeline and the compressor's input
//! representation explicit and fast on a CPU:
//!
//! * [`Tensor`] — shape + contiguous `Vec<f32>` storage, with NCHW helpers.
//! * [`mod@gemm`] — blocked, rayon-parallel matrix multiply (all transpose
//!   combinations), the workhorse behind `im2col`-based convolution.
//! * [`mod@im2col`] — lowering of convolution windows to matrix columns and the
//!   inverse scatter (`col2im`) used by the input-gradient pass.
//! * [`ops`] — parallel elementwise / reduction kernels shared by layers and
//!   by the statistics collector of the adaptive compression controller.
//!
//! Parallelism follows the rayon guidance in the HPC coding guides: data
//! parallel `par_chunks_mut` over independent output blocks, no shared
//! mutable state.

pub mod gemm;
pub mod im2col;
pub mod ops;
mod tensor;

pub use gemm::{gemm, gemm_nn, gemm_nt, gemm_tn, GemmLayout};
pub use im2col::{col2im, im2col, Conv2dGeometry};
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by shape-checked tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two tensors (or a tensor and an expected shape) disagree.
    ShapeMismatch {
        /// What the operation expected.
        expected: Vec<usize>,
        /// What it got.
        got: Vec<usize>,
    },
    /// A reshape changed the total number of elements.
    BadReshape {
        /// Element count of the source tensor.
        from: usize,
        /// Element count implied by the requested shape.
        to: usize,
    },
    /// Convolution geometry does not produce a positive output size.
    BadGeometry(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected:?}, got {got:?}")
            }
            TensorError::BadReshape { from, to } => {
                write!(f, "reshape changes element count: {from} -> {to}")
            }
            TensorError::BadGeometry(msg) => write!(f, "bad conv geometry: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
