use crate::{Result, TensorError};
use rand::distributions::Distribution;
use rand::Rng;

/// A dense, contiguous, row-major `f32` tensor.
///
/// Activation tensors use NCHW order `[batch, channels, height, width]`;
/// weight tensors of a convolution use `[out_c, in_c, kh, kw]`; matrices are
/// `[rows, cols]`. The layout is always row-major over `shape`.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Allocate a zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Allocate a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; n],
        }
    }

    /// Build a tensor from an existing buffer.
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` does not match
    /// the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self> {
        let n: usize = shape.iter().product();
        if n != data.len() {
            return Err(TensorError::ShapeMismatch {
                expected: shape.to_vec(),
                got: vec![data.len()],
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Sample every element i.i.d. from `N(0, std²)`.
    pub fn randn<R: Rng>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        // Box-Muller; avoids a dependency on rand_distr.
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Sample every element i.i.d. uniformly from `[lo, hi)`.
    pub fn rand_uniform<R: Rng>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        let dist = rand::distributions::Uniform::new(lo, hi);
        let data = (0..n).map(|_| dist.sample(rng)).collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Size in bytes of the raw storage (what an activation store accounts).
    #[inline]
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Read-only view of the storage.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, yielding its storage.
    #[inline]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Interpret the shape as 4-D NCHW, padding leading dims with 1.
    ///
    /// `[n]` becomes `(1,1,1,n)`, `[a,b]` becomes `(1,1,a,b)`, etc.
    /// Panics if the tensor has more than 4 dims.
    pub fn dims4(&self) -> (usize, usize, usize, usize) {
        match *self.shape.as_slice() {
            [w] => (1, 1, 1, w),
            [h, w] => (1, 1, h, w),
            [c, h, w] => (1, c, h, w),
            [n, c, h, w] => (n, c, h, w),
            _ => panic!("dims4 on {}-d tensor", self.shape.len()),
        }
    }

    /// Matrix interpretation `(rows, cols)`; panics unless 2-D.
    pub fn dims2(&self) -> (usize, usize) {
        match *self.shape.as_slice() {
            [r, c] => (r, c),
            _ => panic!("dims2 on {}-d tensor {:?}", self.shape.len(), self.shape),
        }
    }

    /// Flat index of `(n, c, h, w)` under NCHW layout.
    #[inline]
    pub fn idx4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        let (_, cc, hh, ww) = self.dims4();
        ((n * cc + c) * hh + h) * ww + w
    }

    /// Element accessor by NCHW coordinates.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.idx4(n, c, h, w)]
    }

    /// Mutable element accessor by NCHW coordinates.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let i = self.idx4(n, c, h, w);
        &mut self.data[i]
    }

    /// Reinterpret the storage under a new shape with the same element count.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        let n: usize = shape.iter().product();
        if n != self.data.len() {
            return Err(TensorError::BadReshape {
                from: self.data.len(),
                to: n,
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// In-place reshape (no copy); same element-count contract as [`reshape`].
    ///
    /// [`reshape`]: Tensor::reshape
    pub fn reshape_in_place(&mut self, shape: &[usize]) -> Result<()> {
        let n: usize = shape.iter().product();
        if n != self.data.len() {
            return Err(TensorError::BadReshape {
                from: self.data.len(),
                to: n,
            });
        }
        self.shape = shape.to_vec();
        Ok(())
    }

    /// Extract the `b`-th batch element of an NCHW tensor as a `[c,h,w]` tensor.
    pub fn batch_slice(&self, b: usize) -> Tensor {
        let (n, c, h, w) = self.dims4();
        assert!(b < n, "batch index {b} out of range {n}");
        let plane = c * h * w;
        Tensor {
            shape: vec![c, h, w],
            data: self.data[b * plane..(b + 1) * plane].to_vec(),
        }
    }

    /// Shape equality check returning a typed error (used by layer contracts).
    pub fn expect_shape(&self, shape: &[usize]) -> Result<()> {
        if self.shape != shape {
            return Err(TensorError::ShapeMismatch {
                expected: shape.to_vec(),
                got: self.shape.clone(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let t = Tensor::zeros(&[2, 3, 4, 5]);
        assert_eq!(t.shape(), &[2, 3, 4, 5]);
        assert_eq!(t.len(), 120);
        assert!(t.data().iter().all(|&x| x == 0.0));
        assert_eq!(t.byte_size(), 480);
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 3]).is_err());
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 4]).is_ok());
    }

    #[test]
    fn idx4_is_row_major_nchw() {
        let mut t = Tensor::zeros(&[2, 3, 4, 5]);
        *t.at4_mut(1, 2, 3, 4) = 7.0;
        // flat index = ((1*3+2)*4+3)*5+4 = 119 (last element)
        assert_eq!(t.data()[119], 7.0);
        assert_eq!(t.at4(1, 2, 3, 4), 7.0);
    }

    #[test]
    fn dims4_pads_leading_dims() {
        assert_eq!(Tensor::zeros(&[7]).dims4(), (1, 1, 1, 7));
        assert_eq!(Tensor::zeros(&[3, 7]).dims4(), (1, 1, 3, 7));
        assert_eq!(Tensor::zeros(&[2, 3, 7]).dims4(), (1, 2, 3, 7));
        assert_eq!(Tensor::zeros(&[5, 2, 3, 7]).dims4(), (5, 2, 3, 7));
    }

    #[test]
    fn reshape_preserves_data_and_checks_count() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn randn_is_roughly_standard_normal() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::randn(&[100_000], 1.0, &mut rng);
        let mean = t.data().iter().sum::<f32>() / t.len() as f32;
        let var = t
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn rand_uniform_respects_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::rand_uniform(&[10_000], -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn batch_slice_extracts_contiguous_plane() {
        let data: Vec<f32> = (0..24).map(|x| x as f32).collect();
        let t = Tensor::from_vec(&[2, 3, 2, 2], data).unwrap();
        let b1 = t.batch_slice(1);
        assert_eq!(b1.shape(), &[3, 2, 2]);
        assert_eq!(b1.data()[0], 12.0);
        assert_eq!(b1.data()[11], 23.0);
    }

    #[test]
    fn expect_shape_reports_mismatch() {
        let t = Tensor::zeros(&[2, 3]);
        assert!(t.expect_shape(&[2, 3]).is_ok());
        let err = t.expect_shape(&[3, 2]).unwrap_err();
        assert_eq!(
            err,
            TensorError::ShapeMismatch {
                expected: vec![3, 2],
                got: vec![2, 3]
            }
        );
    }
}
