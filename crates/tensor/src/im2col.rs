//! Convolution lowering: `im2col` / `col2im`.
//!
//! For one sample with input `[C, H, W]` and kernel `kh×kw`, `im2col`
//! materializes the matrix `[C·kh·kw, OH·OW]` whose column `(oh,ow)` is the
//! receptive field of output pixel `(oh,ow)`. Convolution forward is then a
//! single GEMM with the `[OC, C·kh·kw]` weight matrix; the weight gradient
//! is a `NT` GEMM against the same matrix (which is exactly why the input
//! activation must be kept alive until backward — the tensor this whole
//! framework compresses); and the input gradient is a `TN` GEMM followed by
//! [`col2im`].

use crate::{Result, TensorError};

/// Static geometry of a 2-D convolution (one layer, shared by fwd/bwd).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_c: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Vertical stride.
    pub stride: usize,
    /// Symmetric zero padding on all sides.
    pub pad: usize,
}

impl Conv2dGeometry {
    /// Output height under this geometry.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad).saturating_sub(self.kh) / self.stride + 1
    }

    /// Output width under this geometry.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad).saturating_sub(self.kw) / self.stride + 1
    }

    /// Rows of the im2col matrix: `C·kh·kw`.
    pub fn col_rows(&self) -> usize {
        self.in_c * self.kh * self.kw
    }

    /// Columns of the im2col matrix: `OH·OW`.
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Validate that the geometry yields a non-degenerate output.
    pub fn validate(&self) -> Result<()> {
        if self.stride == 0 {
            return Err(TensorError::BadGeometry("stride must be >= 1".into()));
        }
        if self.kh == 0 || self.kw == 0 {
            return Err(TensorError::BadGeometry("kernel dims must be >= 1".into()));
        }
        if self.in_h + 2 * self.pad < self.kh || self.in_w + 2 * self.pad < self.kw {
            return Err(TensorError::BadGeometry(format!(
                "kernel {}x{} larger than padded input {}x{}",
                self.kh,
                self.kw,
                self.in_h + 2 * self.pad,
                self.in_w + 2 * self.pad
            )));
        }
        Ok(())
    }
}

/// Lower one sample's `[C,H,W]` input into the `[C·kh·kw, OH·OW]` matrix.
///
/// `input` is the contiguous CHW slice of one batch element; `out` must be
/// pre-sized to `geo.col_rows() * geo.col_cols()` and is fully overwritten.
pub fn im2col(geo: &Conv2dGeometry, input: &[f32], out: &mut [f32]) {
    debug_assert_eq!(input.len(), geo.in_c * geo.in_h * geo.in_w);
    debug_assert_eq!(out.len(), geo.col_rows() * geo.col_cols());
    let (oh, ow) = (geo.out_h(), geo.out_w());
    let cols = oh * ow;
    let mut row = 0usize;
    for c in 0..geo.in_c {
        let plane = &input[c * geo.in_h * geo.in_w..(c + 1) * geo.in_h * geo.in_w];
        for ky in 0..geo.kh {
            for kx in 0..geo.kw {
                let dst = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * geo.stride + ky) as isize - geo.pad as isize;
                    let dst_row = &mut dst[oy * ow..(oy + 1) * ow];
                    if iy < 0 || iy >= geo.in_h as isize {
                        dst_row.fill(0.0);
                        continue;
                    }
                    let src_row = &plane[iy as usize * geo.in_w..(iy as usize + 1) * geo.in_w];
                    for (ox, d) in dst_row.iter_mut().enumerate() {
                        let ix = (ox * geo.stride + kx) as isize - geo.pad as isize;
                        *d = if ix < 0 || ix >= geo.in_w as isize {
                            0.0
                        } else {
                            src_row[ix as usize]
                        };
                    }
                }
                row += 1;
            }
        }
    }
}

/// Inverse scatter: accumulate a `[C·kh·kw, OH·OW]` gradient matrix back
/// into a `[C,H,W]` input-gradient buffer (`grad_input` is accumulated
/// into, not overwritten — callers zero it per sample).
pub fn col2im(geo: &Conv2dGeometry, col: &[f32], grad_input: &mut [f32]) {
    debug_assert_eq!(grad_input.len(), geo.in_c * geo.in_h * geo.in_w);
    debug_assert_eq!(col.len(), geo.col_rows() * geo.col_cols());
    let (oh, ow) = (geo.out_h(), geo.out_w());
    let cols = oh * ow;
    let mut row = 0usize;
    for c in 0..geo.in_c {
        let plane_off = c * geo.in_h * geo.in_w;
        for ky in 0..geo.kh {
            for kx in 0..geo.kw {
                let src = &col[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * geo.stride + ky) as isize - geo.pad as isize;
                    if iy < 0 || iy >= geo.in_h as isize {
                        continue;
                    }
                    let base = plane_off + iy as usize * geo.in_w;
                    for ox in 0..ow {
                        let ix = (ox * geo.stride + kx) as isize - geo.pad as isize;
                        if ix < 0 || ix >= geo.in_w as isize {
                            continue;
                        }
                        grad_input[base + ix as usize] += src[oy * ow + ox];
                    }
                }
                row += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(in_c: usize, hw: usize, k: usize, stride: usize, pad: usize) -> Conv2dGeometry {
        Conv2dGeometry {
            in_c,
            in_h: hw,
            in_w: hw,
            kh: k,
            kw: k,
            stride,
            pad,
        }
    }

    #[test]
    fn output_dims_match_conv_formula() {
        let g = geo(3, 224, 11, 4, 2);
        assert_eq!(g.out_h(), 55); // AlexNet conv1
        let g = geo(64, 56, 3, 1, 1);
        assert_eq!(g.out_h(), 56); // same-padded 3x3
    }

    #[test]
    fn validate_rejects_degenerate_geometry() {
        assert!(geo(1, 4, 3, 0, 0).validate().is_err());
        assert!(geo(1, 2, 5, 1, 0).validate().is_err());
        assert!(geo(1, 2, 5, 1, 2).validate().is_ok());
        let mut g = geo(1, 4, 0, 1, 0);
        g.kw = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn im2col_known_2x2_kernel_no_pad() {
        // 1 channel, 3x3 input, 2x2 kernel, stride 1 -> 2x2 output, 4 rows.
        let g = geo(1, 3, 2, 1, 0);
        let input: Vec<f32> = (1..=9).map(|x| x as f32).collect();
        let mut out = vec![0.0; g.col_rows() * g.col_cols()];
        im2col(&g, &input, &mut out);
        // row 0 = top-left element of each window: 1 2 4 5
        assert_eq!(&out[0..4], &[1., 2., 4., 5.]);
        // row 3 = bottom-right of each window: 5 6 8 9
        assert_eq!(&out[12..16], &[5., 6., 8., 9.]);
    }

    #[test]
    fn im2col_zero_pads_borders() {
        let g = geo(1, 2, 3, 1, 1);
        let input = vec![1.0, 2.0, 3.0, 4.0];
        let mut out = vec![f32::NAN; g.col_rows() * g.col_cols()];
        im2col(&g, &input, &mut out);
        assert!(out.iter().all(|x| x.is_finite()));
        // kernel position (0,0) over output (0,0) reads padded (-1,-1) => 0
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y (adjoint test).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for g in [geo(2, 5, 3, 1, 1), geo(3, 8, 3, 2, 1), geo(1, 7, 5, 2, 2)] {
            let n_in = g.in_c * g.in_h * g.in_w;
            let n_col = g.col_rows() * g.col_cols();
            let x: Vec<f32> = (0..n_in).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let y: Vec<f32> = (0..n_col).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut ax = vec![0.0; n_col];
            im2col(&g, &x, &mut ax);
            let mut aty = vec![0.0; n_in];
            col2im(&g, &y, &mut aty);
            let lhs: f32 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
            let rhs: f32 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
            assert!(
                (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
                "adjoint mismatch {lhs} vs {rhs} for {g:?}"
            );
        }
    }

    #[test]
    fn col2im_accumulates_overlapping_windows() {
        // 3x3 input, 2x2 kernel stride 1: centre pixel appears in 4 windows.
        let g = geo(1, 3, 2, 1, 0);
        let col = vec![1.0; g.col_rows() * g.col_cols()];
        let mut grad = vec![0.0; 9];
        col2im(&g, &col, &mut grad);
        assert_eq!(grad[4], 4.0); // centre
        assert_eq!(grad[0], 1.0); // corner
        assert_eq!(grad[1], 2.0); // edge
    }
}
