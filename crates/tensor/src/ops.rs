//! Parallel elementwise and reduction kernels.
//!
//! These are the building blocks shared by the layer implementations in
//! `ebtrain-dnn` and by the statistics collector in `ebtrain-core` (which
//! needs cheap sparsity ratios, mean-absolute values, and moments over very
//! large activation/gradient buffers every `W` iterations).

use rayon::prelude::*;

/// Below this length rayon overhead outweighs the win; run sequentially.
const PAR_THRESHOLD: usize = 32 * 1024;

/// `y[i] += alpha * x[i]`.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len());
    if y.len() >= PAR_THRESHOLD {
        y.par_iter_mut()
            .zip(x.par_iter())
            .for_each(|(yv, &xv)| *yv += alpha * xv);
    } else {
        for (yv, &xv) in y.iter_mut().zip(x) {
            *yv += alpha * xv;
        }
    }
}

/// `y[i] = alpha * y[i] + beta * x[i]` (the SGD-momentum update shape).
pub fn axpby(alpha: f32, beta: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len());
    if y.len() >= PAR_THRESHOLD {
        y.par_iter_mut()
            .zip(x.par_iter())
            .for_each(|(yv, &xv)| *yv = alpha * *yv + beta * xv);
    } else {
        for (yv, &xv) in y.iter_mut().zip(x) {
            *yv = alpha * *yv + beta * xv;
        }
    }
}

/// In-place scale `x[i] *= alpha`.
pub fn scale(alpha: f32, x: &mut [f32]) {
    if x.len() >= PAR_THRESHOLD {
        x.par_iter_mut().for_each(|v| *v *= alpha);
    } else {
        for v in x.iter_mut() {
            *v *= alpha;
        }
    }
}

/// Sum of all elements (f64 accumulator to keep large reductions stable).
pub fn sum(x: &[f32]) -> f64 {
    if x.len() >= PAR_THRESHOLD {
        x.par_chunks(PAR_THRESHOLD)
            .map(|c| c.iter().map(|&v| v as f64).sum::<f64>())
            .sum()
    } else {
        x.iter().map(|&v| v as f64).sum()
    }
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(x: &[f32]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        sum(x) / x.len() as f64
    }
}

/// Mean of absolute values — the `L̄` and `M̄` statistics of Eq. 6/8.
pub fn abs_mean(x: &[f32]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let s: f64 = if x.len() >= PAR_THRESHOLD {
        x.par_chunks(PAR_THRESHOLD)
            .map(|c| c.iter().map(|&v| v.abs() as f64).sum::<f64>())
            .sum()
    } else {
        x.iter().map(|&v| v.abs() as f64).sum()
    };
    s / x.len() as f64
}

/// Largest absolute value; 0 for an empty slice.
pub fn max_abs(x: &[f32]) -> f32 {
    if x.len() >= PAR_THRESHOLD {
        x.par_chunks(PAR_THRESHOLD)
            .map(|c| c.iter().fold(0.0f32, |m, &v| m.max(v.abs())))
            .reduce(|| 0.0, f32::max)
    } else {
        x.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }
}

/// `(min, max)` over the slice; `(0,0)` for an empty slice.
pub fn min_max(x: &[f32]) -> (f32, f32) {
    if x.is_empty() {
        return (0.0, 0.0);
    }
    let fold = |c: &[f32]| {
        c.iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            })
    };
    if x.len() >= PAR_THRESHOLD {
        x.par_chunks(PAR_THRESHOLD).map(fold).reduce(
            || (f32::INFINITY, f32::NEG_INFINITY),
            |(a, b), (c, d)| (a.min(c), b.max(d)),
        )
    } else {
        fold(x)
    }
}

/// Fraction of strictly non-zero elements — the sparsity ratio `R` of Eq. 7.
pub fn nonzero_fraction(x: &[f32]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let nz: usize = if x.len() >= PAR_THRESHOLD {
        x.par_chunks(PAR_THRESHOLD)
            .map(|c| c.iter().filter(|&&v| v != 0.0).count())
            .sum()
    } else {
        x.iter().filter(|&&v| v != 0.0).count()
    };
    nz as f64 / x.len() as f64
}

/// Population variance (f64 math), 0 for slices shorter than 1.
pub fn variance(x: &[f32]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    let ss: f64 = if x.len() >= PAR_THRESHOLD {
        x.par_chunks(PAR_THRESHOLD)
            .map(|c| c.iter().map(|&v| (v as f64 - m).powi(2)).sum::<f64>())
            .sum()
    } else {
        x.iter().map(|&v| (v as f64 - m).powi(2)).sum()
    };
    ss / x.len() as f64
}

/// Dot product with f64 accumulation.
pub fn dot(x: &[f32], y: &[f32]) -> f64 {
    assert_eq!(x.len(), y.len());
    if x.len() >= PAR_THRESHOLD {
        x.par_chunks(PAR_THRESHOLD)
            .zip(y.par_chunks(PAR_THRESHOLD))
            .map(|(a, b)| {
                a.iter()
                    .zip(b)
                    .map(|(&u, &v)| u as f64 * v as f64)
                    .sum::<f64>()
            })
            .sum()
    } else {
        x.iter().zip(y).map(|(&u, &v)| u as f64 * v as f64).sum()
    }
}

/// Per-channel mean over an NCHW tensor: output length `c`.
pub fn nchw_channel_mean(n: usize, c: usize, hw: usize, x: &[f32]) -> Vec<f64> {
    assert_eq!(x.len(), n * c * hw);
    let mut out = vec![0.0f64; c];
    for b in 0..n {
        for (ch, o) in out.iter_mut().enumerate() {
            let off = (b * c + ch) * hw;
            *o += x[off..off + hw].iter().map(|&v| v as f64).sum::<f64>();
        }
    }
    let denom = (n * hw) as f64;
    for o in &mut out {
        *o /= denom;
    }
    out
}

/// Per-channel population variance over an NCHW tensor given channel means.
pub fn nchw_channel_var(n: usize, c: usize, hw: usize, x: &[f32], means: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), n * c * hw);
    assert_eq!(means.len(), c);
    let mut out = vec![0.0f64; c];
    for b in 0..n {
        for (ch, o) in out.iter_mut().enumerate() {
            let m = means[ch];
            let off = (b * c + ch) * hw;
            *o += x[off..off + hw]
                .iter()
                .map(|&v| (v as f64 - m).powi(2))
                .sum::<f64>();
        }
    }
    let denom = (n * hw) as f64;
    for o in &mut out {
        *o /= denom;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_small_and_large() {
        let mut y = vec![1.0; 10];
        axpy(2.0, &[3.0; 10], &mut y);
        assert!(y.iter().all(|&v| v == 7.0));
        let mut y = vec![1.0; PAR_THRESHOLD + 1];
        axpy(0.5, &vec![2.0; PAR_THRESHOLD + 1], &mut y);
        assert!(y.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn axpby_momentum_shape() {
        // v = 0.9 v + 1.0 g
        let mut v = vec![1.0, 2.0];
        axpby(0.9, 1.0, &[10.0, 20.0], &mut v);
        assert!((v[0] - 10.9).abs() < 1e-6);
        assert!((v[1] - 21.8).abs() < 1e-6);
    }

    #[test]
    fn reductions_agree_with_reference() {
        let x: Vec<f32> = (0..1000).map(|i| (i as f32 - 500.0) / 100.0).collect();
        assert!((sum(&x) - x.iter().map(|&v| v as f64).sum::<f64>()).abs() < 1e-9);
        assert!((mean(&x) - (-0.005)).abs() < 1e-6);
        assert!((max_abs(&x) - 5.0).abs() < 1e-6);
        let (lo, hi) = min_max(&x);
        assert_eq!(lo, -5.0);
        assert!((hi - 4.99).abs() < 1e-6);
    }

    #[test]
    fn nonzero_fraction_counts_exact_zeros() {
        let x = [0.0, 1.0, 0.0, -2.0, 0.0, 0.0, 3.0, 0.0];
        assert!((nonzero_fraction(&x) - 0.375).abs() < 1e-12);
        assert_eq!(nonzero_fraction(&[]), 0.0);
    }

    #[test]
    fn variance_matches_hand_computation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        // mean 2.5, var = (2.25+0.25+0.25+2.25)/4 = 1.25
        assert!((variance(&x) - 1.25).abs() < 1e-9);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn dot_matches_reference() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 5.0, 6.0];
        assert!((dot(&x, &y) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn channel_stats_over_nchw() {
        // n=2, c=2, hw=2; channel 0 = [1,2 | 5,6], channel 1 = [3,4 | 7,8]
        let x = [1., 2., 3., 4., 5., 6., 7., 8.];
        let m = nchw_channel_mean(2, 2, 2, &x);
        assert_eq!(m, vec![3.5, 5.5]);
        let v = nchw_channel_var(2, 2, 2, &x, &m);
        // channel0 values {1,2,5,6}: var = ((2.5)^2+(1.5)^2+(1.5)^2+(2.5)^2)/4 = 4.25
        assert!((v[0] - 4.25).abs() < 1e-9);
        assert!((v[1] - 4.25).abs() < 1e-9);
    }

    #[test]
    fn parallel_paths_match_sequential() {
        let x: Vec<f32> = (0..PAR_THRESHOLD + 17)
            .map(|i| ((i % 101) as f32) - 50.0)
            .collect();
        let seq_sum: f64 = x.iter().map(|&v| v as f64).sum();
        assert!((sum(&x) - seq_sum).abs() < 1e-6);
        let seq_nz = x.iter().filter(|&&v| v != 0.0).count() as f64 / x.len() as f64;
        assert!((nonzero_fraction(&x) - seq_nz).abs() < 1e-12);
    }
}
