//! Blocked, rayon-parallel single-precision GEMM.
//!
//! Convolution via `im2col` reduces to `C[m×n] = A[m×k] · B[k×n]`; the
//! backward pass additionally needs the `Aᵀ·B` and `A·Bᵀ` forms. All three
//! share one micro-kernel: rows of `C` are partitioned across rayon tasks
//! (each task owns a disjoint `&mut` row block, so there is no sharing), and
//! the inner loops are ordered `i-k-j` so the innermost loop is a
//! unit-stride AXPY that the compiler auto-vectorizes.

use rayon::prelude::*;

/// Transpose interpretation of a GEMM operand pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmLayout {
    /// `C = A·B`
    NN,
    /// `C = Aᵀ·B`
    TN,
    /// `C = A·Bᵀ`
    NT,
}

/// Minimum number of output elements before spawning parallel tasks;
/// below this the rayon overhead dominates.
const PAR_THRESHOLD: usize = 16 * 1024;

/// `C[m×n] += A[m×k] · B[k×n]` (row-major, `C` must be pre-sized `m*n`).
pub fn gemm_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k, "A size");
    debug_assert_eq!(b.len(), k * n, "B size");
    debug_assert_eq!(c.len(), m * n, "C size");
    let body = |(i, c_row): (usize, &mut [f32])| {
        let a_row = &a[i * k..(i + 1) * k];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_ip * b_v;
            }
        }
    };
    if m * n >= PAR_THRESHOLD {
        c.par_chunks_mut(n).enumerate().for_each(body);
    } else {
        c.chunks_mut(n).enumerate().for_each(body);
    }
}

/// `C[m×n] += Aᵀ·B` where `A` is stored `[k×m]` and `B` is `[k×n]`.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m, "A size");
    debug_assert_eq!(b.len(), k * n, "B size");
    debug_assert_eq!(c.len(), m * n, "C size");
    let body = |(i, c_row): (usize, &mut [f32])| {
        for p in 0..k {
            let a_ip = a[p * m + i];
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_ip * b_v;
            }
        }
    };
    if m * n >= PAR_THRESHOLD {
        c.par_chunks_mut(n).enumerate().for_each(body);
    } else {
        c.chunks_mut(n).enumerate().for_each(body);
    }
}

/// `C[m×n] += A·Bᵀ` where `A` is `[m×k]` and `B` is stored `[n×k]`.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k, "A size");
    debug_assert_eq!(b.len(), n * k, "B size");
    debug_assert_eq!(c.len(), m * n, "C size");
    let body = |(i, c_row): (usize, &mut [f32])| {
        let a_row = &a[i * k..(i + 1) * k];
        for (j, c_v) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *c_v += acc;
        }
    };
    if m * n >= PAR_THRESHOLD {
        c.par_chunks_mut(n).enumerate().for_each(body);
    } else {
        c.chunks_mut(n).enumerate().for_each(body);
    }
}

/// Dispatching front-end over the three layouts.
///
/// Dimension convention: `m`,`n` are the logical output dims of `C`, `k` is
/// the contraction length; operand storage layouts per variant are
/// documented on [`gemm_nn`], [`gemm_tn`], [`gemm_nt`].
pub fn gemm(layout: GemmLayout, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    match layout {
        GemmLayout::NN => gemm_nn(m, k, n, a, b, c),
        GemmLayout::TN => gemm_tn(m, k, n, a, b, c),
        GemmLayout::NT => gemm_nt(m, k, n, a, b, c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn naive_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn rand_mat(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-3, "elem {i}: {x} vs {y}");
        }
    }

    #[test]
    fn nn_matches_naive_small_and_parallel_sizes() {
        let mut rng = StdRng::seed_from_u64(7);
        for (m, k, n) in [(3, 4, 5), (1, 1, 1), (17, 9, 33), (64, 128, 300)] {
            let a = rand_mat(&mut rng, m * k);
            let b = rand_mat(&mut rng, k * n);
            let mut c = vec![0.0; m * n];
            gemm_nn(m, k, n, &a, &b, &mut c);
            assert_close(&c, &naive_nn(m, k, n, &a, &b));
        }
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(8);
        for (m, k, n) in [(4, 6, 5), (31, 7, 65), (128, 64, 200)] {
            // A stored [k x m]; logical op is transpose(A)*B.
            let a_t = rand_mat(&mut rng, k * m);
            let b = rand_mat(&mut rng, k * n);
            let mut a = vec![0.0; m * k];
            for p in 0..k {
                for i in 0..m {
                    a[i * k + p] = a_t[p * m + i];
                }
            }
            let mut c = vec![0.0; m * n];
            gemm_tn(m, k, n, &a_t, &b, &mut c);
            assert_close(&c, &naive_nn(m, k, n, &a, &b));
        }
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(9);
        for (m, k, n) in [(4, 6, 5), (33, 17, 9), (100, 80, 160)] {
            let a = rand_mat(&mut rng, m * k);
            // B stored [n x k]; logical op is A*transpose(B).
            let b_t = rand_mat(&mut rng, n * k);
            let mut b = vec![0.0; k * n];
            for j in 0..n {
                for p in 0..k {
                    b[p * n + j] = b_t[j * k + p];
                }
            }
            let mut c = vec![0.0; m * n];
            gemm_nt(m, k, n, &a, &b_t, &mut c);
            assert_close(&c, &naive_nn(m, k, n, &a, &b));
        }
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = [1.0, 0.0, 0.0, 1.0]; // identity 2x2
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = vec![1.0; 4];
        gemm_nn(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn dispatch_matches_direct_calls() {
        let mut rng = StdRng::seed_from_u64(10);
        let (m, k, n) = (6, 5, 4);
        let a = rand_mat(&mut rng, m * k);
        let b = rand_mat(&mut rng, k * n);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(GemmLayout::NN, m, k, n, &a, &b, &mut c1);
        gemm_nn(m, k, n, &a, &b, &mut c2);
        assert_eq!(c1, c2);
    }
}
