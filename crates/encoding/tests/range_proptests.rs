//! Property tests for the adaptive binary range coder: every stream the
//! encoder can produce must decode back bit-for-bit, through both the
//! raw bit layer and the center-folded symbol layer, for arbitrary model
//! trajectories (the decoder reconstructs the model from the bits alone,
//! so any divergence compounds and surfaces as a mismatch).

use ebtrain_encoding::range::{self, RangeDecoder, RangeEncoder};
use proptest::prelude::*;

/// Bit streams that drive the adaptive models through varied regimes:
/// skewed, alternating, and uniform stretches.
fn bit_stream() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        3 => prop::collection::vec(0u8..2, 0..4000),
        1 => prop::collection::vec(Just(1u8), 0..2000),
        1 => prop::collection::vec(Just(0u8), 0..2000),
    ]
}

/// Quantization-code-shaped symbols: center-clustered, with occasional
/// outlier-marker zeros and full-range extremes.
fn symbol_stream(center: u32) -> impl Strategy<Value = Vec<u32>> {
    let near = center.saturating_sub(40)..center.saturating_add(40).max(1);
    prop_oneof![
        5 => prop::collection::vec(near, 0..3000),
        2 => prop::collection::vec(Just(center), 0..3000),
        1 => prop::collection::vec(any::<u32>(), 0..300),
        1 => prop::collection::vec(Just(0u32), 0..300),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn raw_and_modeled_bits_roundtrip(bits in bit_stream(), raw_period in 1usize..8) {
        // Interleave modeled and raw coding on one interval: the two
        // paths share low/high state, so any carry/renorm divergence
        // between them corrupts everything downstream.
        let mut enc = RangeEncoder::new();
        let mut model = range::BitModel::new();
        for (i, &b) in bits.iter().enumerate() {
            if i % raw_period == 0 {
                enc.encode_raw_bit(b as u32);
            } else {
                enc.encode_bit(&mut model, b as u32);
            }
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let mut model = range::BitModel::new();
        for (i, &b) in bits.iter().enumerate() {
            let got = if i % raw_period == 0 {
                dec.decode_raw_bit()
            } else {
                dec.decode_bit(&mut model)
            };
            prop_assert_eq!(got, b as u32, "bit {} diverged", i);
        }
    }

    #[test]
    fn symbol_blocks_roundtrip_at_any_center(
        center in prop_oneof![Just(0u32), Just(1u32), Just(512u32), Just(32_768u32), Just(u32::MAX), any::<u32>()],
        seed_codes in symbol_stream(512),
    ) {
        // Rebase the generated codes around the chosen center so the
        // stream still clusters where the model expects structure.
        let codes: Vec<u32> = seed_codes
            .iter()
            .map(|&c| center.wrapping_add(c.wrapping_sub(512)))
            .collect();
        let bytes = range::encode_block(&codes, center);
        let back = range::decode_block(&bytes, codes.len(), center).unwrap();
        prop_assert_eq!(back, codes);
    }

    #[test]
    fn truncated_symbol_streams_never_panic(
        codes in prop::collection::vec(0u32..100_000, 1..500),
        cut_num in 0u32..1000,
    ) {
        let center = 50_000u32;
        let bytes = range::encode_block(&codes, center);
        let cut = (cut_num as usize * bytes.len()) / 1000;
        // Truncation yields garbage symbols or an error — never a panic
        // or runaway allocation (the caller's n bounds every alloc).
        let _ = range::decode_block(&bytes[..cut], codes.len(), center);
    }
}
