//! # ebtrain-encoding
//!
//! Lossless coding primitives shared by the compressors in this workspace:
//!
//! * [`bitio`] — MSB-first bit reader/writer over byte buffers.
//! * [`huffman`] — canonical, length-limited Huffman codec over `u32`
//!   symbol alphabets (quantization codes in `ebtrain-sz`, RLE tokens in
//!   `ebtrain-imgcomp`), with a table-driven decoder and a
//!   shared-codebook/many-blocks API (`Codebook` / `Decoder`) for
//!   block-parallel formats.
//! * [`lz`] — an LZ4-style greedy byte compressor, used as the final
//!   lossless stage (SZ applies a general-purpose lossless pass after
//!   Huffman; cuSZ relies on Huffman + run collapsing — both are modelled
//!   by Huffman→LZ here).
//! * [`range`] — codebook-free adaptive binary range coder (bit
//!   predictor + carry-less renormalization), the second entropy backend
//!   for chunk-framed streams.
//! * [`entropy`] — the entropy-stage seam over [`huffman`] and [`range`]:
//!   the per-frame tag byte, encode/decode backend handles, and the
//!   histogram-entropy estimate that drives per-chunk selection.
//! * [`varint`] — LEB128 unsigned varints for headers and run lengths.
//! * [`byteplane`] — byte-plane (de)shuffle of `f32` buffers, the classic
//!   transform that makes IEEE-754 streams compressible losslessly.
//!
//! Everything is dependency-free, deterministic, and round-trip tested
//! (unit + property tests).

pub mod bitio;
pub mod byteplane;
pub mod entropy;
pub mod huffman;
pub mod lz;
pub mod range;
pub mod varint;

/// Errors surfaced while decoding a corrupt or truncated stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of input bytes/bits.
    UnexpectedEof,
    /// Structurally invalid stream (bad header, impossible code, ...).
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of stream"),
            CodecError::Corrupt(msg) => write!(f, "corrupt stream: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CodecError>;
