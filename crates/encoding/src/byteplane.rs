//! Byte-plane (de)shuffle of `f32` buffers.
//!
//! IEEE-754 floats drawn from a smooth distribution share exponent bytes;
//! transposing the buffer so all byte-0s come first, then all byte-1s,
//! etc., turns that similarity into byte runs that LZ/Huffman can exploit.
//! This is the core of the *lossless* comparator (~2× on activation data,
//! matching the regime the paper cites for lossless approaches).

/// Shuffle `values` into 4 contiguous byte planes (plane 0 = LSB).
pub fn shuffle_f32(values: &[f32]) -> Vec<u8> {
    let n = values.len();
    let mut out = vec![0u8; n * 4];
    let (p0, rest) = out.split_at_mut(n);
    let (p1, rest) = rest.split_at_mut(n);
    let (p2, p3) = rest.split_at_mut(n);
    for (i, v) in values.iter().enumerate() {
        let b = v.to_le_bytes();
        p0[i] = b[0];
        p1[i] = b[1];
        p2[i] = b[2];
        p3[i] = b[3];
    }
    out
}

/// Inverse of [`shuffle_f32`]. Returns `None` if `bytes` is not 4·k long.
pub fn unshuffle_f32(bytes: &[u8]) -> Option<Vec<f32>> {
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let n = bytes.len() / 4;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(f32::from_le_bytes([
            bytes[i],
            bytes[n + i],
            bytes[2 * n + i],
            bytes[3 * n + i],
        ]));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_exact_bits() {
        let mut rng = StdRng::seed_from_u64(21);
        let data: Vec<f32> = (0..10_000)
            .map(|_| f32::from_bits(rng.gen::<u32>()))
            .collect();
        let shuffled = shuffle_f32(&data);
        let back = unshuffle_f32(&shuffled).unwrap();
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(unshuffle_f32(&shuffle_f32(&[])).unwrap(), Vec::<f32>::new());
        let one = [std::f32::consts::PI];
        assert_eq!(unshuffle_f32(&shuffle_f32(&one)).unwrap(), one);
    }

    #[test]
    fn rejects_misaligned_length() {
        assert!(unshuffle_f32(&[1, 2, 3]).is_none());
    }

    #[test]
    fn planes_are_grouped() {
        // 1.0f32 = [0,0,128,63] LE; two copies -> planes [0,0][0,0][128,128][63,63]
        let shuffled = shuffle_f32(&[1.0, 1.0]);
        assert_eq!(shuffled, vec![0, 0, 0, 0, 128, 128, 63, 63]);
    }

    #[test]
    fn smooth_data_becomes_lz_friendly() {
        // Similar-magnitude values share high bytes -> plane 3 is a run.
        let data: Vec<f32> = (0..10_000).map(|i| 1.0 + (i as f32) * 1e-6).collect();
        let shuffled = shuffle_f32(&data);
        let c_shuffled = crate::lz::compress(&shuffled);
        let raw: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        let c_raw = crate::lz::compress(&raw);
        assert!(
            c_shuffled.len() < c_raw.len(),
            "shuffled {} vs raw {}",
            c_shuffled.len(),
            c_raw.len()
        );
    }
}
