//! LEB128 unsigned varints (headers, run lengths, symbol tables).

use crate::{CodecError, Result};

/// Append `value` to `out` as a LEB128 varint.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint starting at `pos`; advances `pos` past it.
pub fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos).ok_or(CodecError::UnexpectedEof)?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError::Corrupt("varint overflow"));
        }
        value |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Convenience: write a `usize`.
pub fn write_usize(out: &mut Vec<u8>, value: usize) {
    write_u64(out, value as u64);
}

/// Convenience: read a `usize`.
pub fn read_usize(bytes: &[u8], pos: &mut usize) -> Result<usize> {
    Ok(read_u64(bytes, pos)? as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            255,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn single_byte_for_small_values() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 127);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_stream_errors() {
        let buf = [0x80u8]; // continuation bit set, nothing follows
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn sequential_reads_advance_position() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 5);
        write_u64(&mut buf, 1_000_000);
        write_u64(&mut buf, 0);
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos).unwrap(), 5);
        assert_eq!(read_u64(&buf, &mut pos).unwrap(), 1_000_000);
        assert_eq!(read_u64(&buf, &mut pos).unwrap(), 0);
        assert_eq!(pos, buf.len());
    }
}
