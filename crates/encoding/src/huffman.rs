//! Canonical, length-limited Huffman codec over sparse `u32` alphabets.
//!
//! The SZ-style compressor produces quantization codes drawn from a
//! potentially large alphabet (up to 2·radius symbols) but with extremely
//! skewed frequencies — the "prediction hit" code dominates. Only symbols
//! that actually occur are placed in the table; the table itself is
//! serialized as `(symbol, code length)` pairs, and codes are assigned
//! canonically so the decoder rebuilds the table from lengths alone.

use crate::bitio::{BitReader, BitWriter};
use crate::varint;
use crate::{CodecError, Result};
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Longest admissible code. 32 keeps codes inside the bit-I/O fast path;
/// the builder degrades frequencies until the bound holds.
const MAX_CODE_LEN: u8 = 32;

/// Compute code lengths for `(symbol, count)` pairs (all counts > 0).
fn build_lengths(freqs: &[(u32, u64)]) -> Vec<(u32, u8)> {
    assert!(!freqs.is_empty());
    if freqs.len() == 1 {
        return vec![(freqs[0].0, 1)];
    }
    let mut counts: Vec<u64> = freqs.iter().map(|&(_, c)| c).collect();
    loop {
        let lengths = huffman_lengths_once(&counts);
        let max = lengths.iter().copied().max().unwrap();
        if max <= MAX_CODE_LEN {
            return freqs
                .iter()
                .zip(&lengths)
                .map(|(&(s, _), &l)| (s, l))
                .collect();
        }
        // Flatten the distribution and retry; converges because counts
        // approach uniform (which yields ~log2(n) <= 32 for any sane n).
        for c in &mut counts {
            *c = (*c).div_ceil(2);
        }
    }
}

/// One round of Huffman tree construction; returns a length per input slot.
fn huffman_lengths_once(counts: &[u64]) -> Vec<u8> {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        id: usize,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Min-heap by weight; tie-break on id for determinism.
            other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = counts.len();
    // parent[i] for all 2n-1 tree slots; leaves are 0..n.
    let mut parent = vec![usize::MAX; 2 * n - 1];
    let mut heap: BinaryHeap<Node> = counts
        .iter()
        .enumerate()
        .map(|(id, &weight)| Node { weight, id })
        .collect();
    let mut next_id = n;
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        parent[a.id] = next_id;
        parent[b.id] = next_id;
        heap.push(Node {
            weight: a.weight + b.weight,
            id: next_id,
        });
        next_id += 1;
    }
    let root = next_id - 1;
    // Depth of each leaf = code length.
    let mut depth = vec![0u8; 2 * n - 1];
    for id in (0..2 * n - 1).rev() {
        if id == root {
            continue;
        }
        depth[id] = depth[parent[id]] + 1;
    }
    depth.truncate(n);
    depth
}

/// Canonical code assignment from `(symbol, length)` pairs.
///
/// Returns per-symbol `(code, length)` plus the sorted table used for
/// decoding. Sorting is `(length, symbol)` as in DEFLATE.
fn canonical_codes(lengths: &[(u32, u8)]) -> Vec<(u32, u64, u8)> {
    let mut sorted: Vec<(u32, u8)> = lengths.to_vec();
    sorted.sort_by_key(|&(sym, len)| (len, sym));
    let mut out = Vec::with_capacity(sorted.len());
    // u64: the first length may be up to 32, so the widening shift below
    // can be 32 bits — and overfull (corrupt) length tables may push the
    // accumulator past 2^len, which the decoder then detects and rejects.
    let mut code = 0u64;
    let mut prev_len = 0u8;
    for &(sym, len) in &sorted {
        code <<= len - prev_len;
        out.push((sym, code, len));
        code += 1;
        prev_len = len;
    }
    out
}

/// Count symbol frequencies, returned sorted by symbol.
///
/// Quantization codes cluster around the quantizer's zero point, so the
/// common case is a narrow symbol span: one min/max pass, then a dense
/// counting array emitted in index order. Wide or tiny inputs fall back
/// to sort-and-run-length counting; both paths produce the identical
/// symbol-sorted histogram [`Codebook::from_freqs`] expects. Histograms
/// from independently-processed blocks can be combined with
/// [`merge_freqs`] before building one shared codebook.
pub fn count_freqs(symbols: &[u32]) -> Vec<(u32, u64)> {
    if symbols.is_empty() {
        return Vec::new();
    }
    let (mut min, mut max) = (u32::MAX, 0u32);
    for &s in symbols {
        min = min.min(s);
        max = max.max(s);
    }
    let span = (max - min) as usize + 1;
    // Cap the counting array at ~4× the input length (or one page of
    // u64s for small blocks) so sparse alphabets don't zero-fill far
    // more memory than the sort would touch.
    if span <= symbols.len().saturating_mul(4).max(512) {
        let mut counts = vec![0u64; span];
        for &s in symbols {
            counts[(s - min) as usize] += 1;
        }
        return counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (min + i as u32, c))
            .collect();
    }
    let mut sorted = symbols.to_vec();
    sorted.sort_unstable();
    let mut freqs: Vec<(u32, u64)> = Vec::new();
    for &s in &sorted {
        match freqs.last_mut() {
            Some((sym, c)) if *sym == s => *c += 1,
            _ => freqs.push((s, 1)),
        }
    }
    freqs
}

/// Merge a symbol-sorted histogram into another (both stay sorted).
pub fn merge_freqs(into: &mut Vec<(u32, u64)>, other: &[(u32, u64)]) {
    let a = std::mem::take(into);
    let mut merged = Vec::with_capacity(a.len() + other.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < other.len() {
        match (a.get(i), other.get(j)) {
            (Some(&(sa, ca)), Some(&(sb, cb))) if sa == sb => {
                merged.push((sa, ca + cb));
                i += 1;
                j += 1;
            }
            (Some(&(sa, ca)), Some(&(sb, _))) if sa < sb => {
                merged.push((sa, ca));
                i += 1;
            }
            (Some(_), Some(&(sb, cb))) => {
                merged.push((sb, cb));
                j += 1;
            }
            (Some(&(sa, ca)), None) => {
                merged.push((sa, ca));
                i += 1;
            }
            (None, Some(&(sb, cb))) => {
                merged.push((sb, cb));
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    *into = merged;
}

/// Symbol → `(code, length)` emission lookup.
enum EmitLut {
    /// Direct-indexed over `[min_sym, max_sym]` — always the case for
    /// quantization codes, which live within `2·radius`.
    Dense { min_sym: u32, table: Vec<(u64, u8)> },
    /// Fallback for pathologically wide, sparse alphabets.
    Sparse(HashMap<u32, (u64, u8)>),
}

/// A canonical Huffman code set shared by any number of encoded blocks
/// (cuSZ-style: one codebook per tensor, one bitstream per block).
pub struct Codebook {
    canon: Vec<(u32, u64, u8)>,
    emit: EmitLut,
}

impl Codebook {
    /// Build the canonical, length-limited code set for a symbol-sorted
    /// histogram (as produced by [`count_freqs`] / [`merge_freqs`]). An
    /// empty histogram yields an empty codebook, valid only for empty
    /// blocks.
    pub fn from_freqs(freqs: &[(u32, u64)]) -> Codebook {
        if freqs.is_empty() {
            return Codebook {
                canon: Vec::new(),
                emit: EmitLut::Sparse(HashMap::new()),
            };
        }
        let lengths = build_lengths(freqs);
        let canon = canonical_codes(&lengths);
        let min_sym = freqs.first().unwrap().0;
        let max_sym = freqs.last().unwrap().0;
        let span = (max_sym - min_sym) as usize + 1;
        let emit = if span <= (1usize << 17).max(4 * freqs.len()) {
            let mut table = vec![(0u64, 0u8); span];
            for &(sym, code, len) in &canon {
                table[(sym - min_sym) as usize] = (code, len);
            }
            EmitLut::Dense { min_sym, table }
        } else {
            let mut map = HashMap::with_capacity(canon.len());
            for &(sym, code, len) in &canon {
                map.insert(sym, (code, len));
            }
            EmitLut::Sparse(map)
        };
        Codebook { canon, emit }
    }

    /// Number of symbols in the codebook.
    pub fn len(&self) -> usize {
        self.canon.len()
    }

    /// True when built from an empty histogram.
    pub fn is_empty(&self) -> bool {
        self.canon.is_empty()
    }

    /// Serialize as `varint table_len · (varint sym, u8 len)*` in
    /// canonical order, so [`Decoder::deserialize`] rebuilds identically.
    pub fn serialize(&self, out: &mut Vec<u8>) {
        varint::write_usize(out, self.canon.len());
        for &(sym, _, len) in &self.canon {
            varint::write_u64(out, sym as u64);
            out.push(len);
        }
    }

    /// Append one block: `varint n_symbols · varint bits_len · bitstream`.
    ///
    /// Every symbol must be present in the histogram the codebook was
    /// built from.
    pub fn encode_block(&self, symbols: &[u32], out: &mut Vec<u8>) {
        varint::write_usize(out, symbols.len());
        self.emit_bits(symbols, out);
    }

    /// Append `varint bits_len · bitstream` for `symbols`.
    fn emit_bits(&self, symbols: &[u32], out: &mut Vec<u8>) {
        let mut bw = BitWriter::new();
        match &self.emit {
            EmitLut::Dense { min_sym, table } => {
                for s in symbols {
                    debug_assert!(*s >= *min_sym, "symbol {s} not in codebook");
                    let (code, len) = table[(s - min_sym) as usize];
                    debug_assert!(len != 0, "symbol {s} not in codebook");
                    bw.write_bits(code, len as u32);
                }
            }
            EmitLut::Sparse(map) => {
                for s in symbols {
                    let (code, len) = map[s];
                    bw.write_bits(code, len as u32);
                }
            }
        }
        let bits = bw.finish();
        varint::write_usize(out, bits.len());
        out.extend_from_slice(&bits);
    }
}

/// Encode `symbols` into a self-describing byte stream.
///
/// Layout: `varint n_symbols · varint table_len · (varint sym, u8 len)* ·
/// varint bits_len · bitstream`. An empty input encodes to the minimal
/// 2-byte header. For many blocks sharing one table, use [`count_freqs`]
/// / [`Codebook`] / [`Decoder`] directly.
pub fn encode(symbols: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    varint::write_usize(&mut out, symbols.len());
    if symbols.is_empty() {
        varint::write_usize(&mut out, 0);
        return out;
    }
    let codebook = Codebook::from_freqs(&count_freqs(symbols));
    codebook.serialize(&mut out);
    codebook.emit_bits(symbols, &mut out);
    out
}

/// Advance `pos` past a table serialized by [`Codebook::serialize`]
/// without building any decoding structures — for consumers that only
/// need to locate the data that follows (e.g. a frame index over a
/// container whose codebook sits between header and frames).
pub fn skip_serialized_codebook(bytes: &[u8], pos: &mut usize) -> Result<()> {
    let table_len = varint::read_usize(bytes, pos)?;
    if table_len > bytes.len().saturating_sub(*pos) / 2 {
        return Err(CodecError::Corrupt("table length exceeds stream"));
    }
    for _ in 0..table_len {
        let _sym = varint::read_u64(bytes, pos)?;
        let len = *bytes.get(*pos).ok_or(CodecError::UnexpectedEof)?;
        *pos += 1;
        if len == 0 || len > MAX_CODE_LEN {
            return Err(CodecError::Corrupt("invalid code length"));
        }
    }
    Ok(())
}

/// Width of the table-driven decoder's primary lookup table. Every code
/// of at most this many bits decodes with a single peek + index; longer
/// (rare, deep-tail) codes fall through to the canonical first-code walk.
/// 11 bits → a 2 KiB table that stays resident in L1.
const PRIMARY_BITS: u32 = 11;

/// Prebuilt table-driven canonical decoder, reusable across any number
/// of blocks encoded against the same [`Codebook`]. Cheap to share
/// between threads (all state is read-only after construction).
pub struct Decoder {
    /// Flat `2^primary_bits` lookup: `(symbol, code length)`; a zero
    /// length marks an overflow slot (code longer than `primary_bits`).
    primary: Vec<(u32, u8)>,
    primary_bits: u32,
    /// Canonical first-code/first-index walk state for the overflow path.
    first_code: Vec<u64>,
    first_index: Vec<usize>,
    count_per_len: Vec<usize>,
    symbols_in_order: Vec<u32>,
    max_len: u32,
}

impl Decoder {
    /// Read a table serialized by [`Codebook::serialize`] and build the
    /// decoding structures. An empty table yields a decoder valid only
    /// for empty blocks.
    pub fn deserialize(bytes: &[u8], pos: &mut usize) -> Result<Decoder> {
        let table_len = varint::read_usize(bytes, pos)?;
        // Each serialized table entry is at least 2 bytes; a corrupt
        // count past that cannot be satisfied, so reject before
        // reserving memory.
        if table_len > bytes.len().saturating_sub(*pos) / 2 {
            return Err(CodecError::Corrupt("table length exceeds stream"));
        }
        let mut table: Vec<(u32, u8)> = Vec::with_capacity(table_len);
        for _ in 0..table_len {
            let sym = varint::read_u64(bytes, pos)? as u32;
            let len = *bytes.get(*pos).ok_or(CodecError::UnexpectedEof)?;
            *pos += 1;
            if len == 0 || len > MAX_CODE_LEN {
                return Err(CodecError::Corrupt("invalid code length"));
            }
            table.push((sym, len));
        }
        if table.is_empty() {
            return Ok(Decoder {
                primary: Vec::new(),
                primary_bits: 0,
                first_code: Vec::new(),
                first_index: Vec::new(),
                count_per_len: Vec::new(),
                symbols_in_order: Vec::new(),
                max_len: 0,
            });
        }
        Decoder::build(&canonical_codes(&table))
    }

    /// True when built from an empty table.
    pub fn is_empty(&self) -> bool {
        self.symbols_in_order.is_empty()
    }

    /// Decode one block appended by [`Codebook::encode_block`], advancing
    /// `pos` past it.
    pub fn decode_block(&self, bytes: &[u8], pos: &mut usize) -> Result<Vec<u32>> {
        let n = varint::read_usize(bytes, pos)?;
        let bits_len = varint::read_usize(bytes, pos)?;
        // Subtract rather than add: `*pos + bits_len` could wrap.
        if bits_len > bytes.len() - *pos {
            return Err(CodecError::UnexpectedEof);
        }
        if n == 0 {
            *pos += bits_len;
            return Ok(Vec::new());
        }
        if self.is_empty() {
            return Err(CodecError::Corrupt(
                "empty huffman table for non-empty data",
            ));
        }
        // Every code is at least one bit, so the bitstream bounds the
        // symbol count; reject corrupt counts before reserving memory.
        if n > bits_len.saturating_mul(8) {
            return Err(CodecError::Corrupt("symbol count exceeds bitstream"));
        }
        let mut br = BitReader::new(&bytes[*pos..*pos + bits_len]);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.decode_symbol(&mut br)?);
        }
        *pos += bits_len;
        Ok(out)
    }

    fn build(canon: &[(u32, u64, u8)]) -> Result<Decoder> {
        let max_len = canon.iter().map(|&(_, _, l)| l).max().unwrap() as u32;
        // A canonically-assigned code must fit in its own length; an
        // overfull (Kraft-violating) length table walks past that.
        for &(_, code, len) in canon {
            if code >= 1u64 << len {
                return Err(CodecError::Corrupt("overfull huffman code set"));
            }
        }
        let mut first_code = vec![0u64; max_len as usize + 2];
        let mut first_index = vec![0usize; max_len as usize + 2];
        let mut count_per_len = vec![0usize; max_len as usize + 1];
        for &(_, _, l) in canon {
            count_per_len[l as usize] += 1;
        }
        {
            let mut code = 0u64;
            let mut index = 0usize;
            for len in 1..=max_len as usize {
                first_code[len] = code;
                first_index[len] = index;
                code = (code + count_per_len[len] as u64) << 1;
                index += count_per_len[len];
            }
        }
        let primary_bits = max_len.min(PRIMARY_BITS);
        let mut primary = vec![(0u32, 0u8); 1usize << primary_bits];
        for &(sym, code, len) in canon {
            if len as u32 <= primary_bits {
                // Fill every slot whose top `len` bits equal `code`.
                let base = (code as usize) << (primary_bits - len as u32);
                let span = 1usize << (primary_bits - len as u32);
                for slot in &mut primary[base..base + span] {
                    *slot = (sym, len);
                }
            }
        }
        Ok(Decoder {
            primary,
            primary_bits,
            first_code,
            first_index,
            count_per_len,
            symbols_in_order: canon.iter().map(|&(s, _, _)| s).collect(),
            max_len,
        })
    }

    /// Decode one symbol: primary-table fast path, canonical walk for
    /// codes longer than `primary_bits`.
    #[inline]
    fn decode_symbol(&self, br: &mut BitReader<'_>) -> Result<u32> {
        let window = br.peek_bits(self.primary_bits) as usize;
        let (sym, len) = self.primary[window];
        if len != 0 {
            br.consume(len as u32)?;
            return Ok(sym);
        }
        // Overflow (code deeper than the primary table): canonical
        // first-code walk over the remaining lengths, re-peeking the
        // widening window instead of pulling single bits.
        for len in (self.primary_bits + 1)..=self.max_len {
            let code = br.peek_bits(len);
            let offset = code.wrapping_sub(self.first_code[len as usize]);
            if self.count_per_len[len as usize] > 0
                && code >= self.first_code[len as usize]
                && (offset as usize) < self.count_per_len[len as usize]
            {
                br.consume(len)?;
                return Ok(self.symbols_in_order[self.first_index[len as usize] + offset as usize]);
            }
        }
        Err(CodecError::Corrupt("code longer than table max"))
    }
}

/// Decode a stream produced by [`encode`].
///
/// Table-driven: the canonical code set is expanded once into a flat
/// 11-bit primary lookup table, so the per-symbol cost is a single peek
/// + table index instead of a bit-by-bit tree walk.
pub fn decode(bytes: &[u8]) -> Result<Vec<u32>> {
    let mut pos = 0usize;
    let n = varint::read_usize(bytes, &mut pos)?;
    let decoder = Decoder::deserialize(bytes, &mut pos)?;
    if n == 0 {
        return Ok(Vec::new());
    }
    if decoder.is_empty() {
        return Err(CodecError::Corrupt(
            "empty huffman table for non-empty data",
        ));
    }
    let bits_len = varint::read_usize(bytes, &mut pos)?;
    // Subtract rather than add: `pos + bits_len` could wrap.
    if bits_len > bytes.len() - pos {
        return Err(CodecError::UnexpectedEof);
    }
    // Every code is at least one bit, so the bitstream bounds the symbol
    // count; reject corrupt counts before reserving memory.
    if n > bits_len.saturating_mul(8) {
        return Err(CodecError::Corrupt("symbol count exceeds bitstream"));
    }
    let mut br = BitReader::new(&bytes[pos..pos + bits_len]);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decoder.decode_symbol(&mut br)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_empty_single_and_uniform() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<u32>::new());
        assert_eq!(decode(&encode(&[42])).unwrap(), vec![42]);
        assert_eq!(
            decode(&encode(&[7, 7, 7, 7, 7])).unwrap(),
            vec![7, 7, 7, 7, 7]
        );
        let uniform: Vec<u32> = (0..256).collect();
        assert_eq!(decode(&encode(&uniform)).unwrap(), uniform);
    }

    #[test]
    fn roundtrip_skewed_distribution() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut data = Vec::with_capacity(50_000);
        for _ in 0..50_000 {
            // 90% symbol 1000, remainder spread wide — the SZ shape.
            if rng.gen_bool(0.9) {
                data.push(1000u32);
            } else {
                data.push(rng.gen_range(0..4000));
            }
        }
        let enc = encode(&data);
        assert_eq!(decode(&enc).unwrap(), data);
        // Skew means far under 2 bytes/symbol.
        assert!(
            enc.len() < data.len(),
            "enc {} data {}",
            enc.len(),
            data.len()
        );
    }

    #[test]
    fn compression_beats_raw_on_low_entropy() {
        let data = vec![3u32; 10_000];
        let enc = encode(&data);
        // 10k symbols at 1 bit ≈ 1.25 kB + header.
        assert!(enc.len() < 1400, "got {}", enc.len());
    }

    #[test]
    fn decode_rejects_truncation() {
        let data: Vec<u32> = (0..100).map(|i| i % 7).collect();
        let enc = encode(&data);
        for cut in [1, enc.len() / 2, enc.len() - 1] {
            assert!(decode(&enc[..cut]).is_err(), "cut {cut} should fail");
        }
    }

    #[test]
    fn large_alphabet_roundtrip() {
        let mut rng = StdRng::seed_from_u64(12);
        let data: Vec<u32> = (0..20_000).map(|_| rng.gen_range(0..65_536)).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn shared_codebook_blocks_roundtrip() {
        // Many blocks, one table — the cuSZ-style layout the sz codec
        // uses for its chunk frames.
        let mut rng = StdRng::seed_from_u64(21);
        let blocks: Vec<Vec<u32>> = (0..5)
            .map(|b| {
                (0..2000)
                    .map(|_| {
                        if rng.gen_bool(0.8) {
                            500
                        } else {
                            rng.gen_range(0..(b as u32 + 2) * 100)
                        }
                    })
                    .collect()
            })
            .collect();
        let mut freqs = Vec::new();
        for b in &blocks {
            merge_freqs(&mut freqs, &count_freqs(b));
        }
        let codebook = Codebook::from_freqs(&freqs);
        let mut stream = Vec::new();
        codebook.serialize(&mut stream);
        for b in &blocks {
            codebook.encode_block(b, &mut stream);
        }
        codebook.encode_block(&[], &mut stream); // empty block is legal

        let mut pos = 0usize;
        let decoder = Decoder::deserialize(&stream, &mut pos).unwrap();
        for b in &blocks {
            assert_eq!(&decoder.decode_block(&stream, &mut pos).unwrap(), b);
        }
        assert_eq!(
            decoder.decode_block(&stream, &mut pos).unwrap(),
            Vec::<u32>::new()
        );
        assert_eq!(pos, stream.len());
    }

    #[test]
    fn decode_block_rejects_wrapping_bits_len() {
        // A bits_len varint near u64::MAX must not wrap the bounds
        // check into a panicking slice.
        let cb = Codebook::from_freqs(&count_freqs(&[5, 5, 9]));
        let mut stream = Vec::new();
        cb.serialize(&mut stream);
        let mut pos = 0usize;
        let dec = Decoder::deserialize(&stream, &mut pos).unwrap();
        let mut block = Vec::new();
        varint::write_usize(&mut block, 1); // n_symbols
        varint::write_u64(&mut block, u64::MAX - 1); // bits_len
        let mut bpos = 0usize;
        assert!(dec.decode_block(&block, &mut bpos).is_err());
    }

    #[test]
    fn merge_freqs_is_a_sorted_multiset_union() {
        let mut a = count_freqs(&[1, 1, 5, 9]);
        let b = count_freqs(&[0, 1, 9, 9, 12]);
        merge_freqs(&mut a, &b);
        assert_eq!(a, vec![(0, 1), (1, 3), (5, 1), (9, 3), (12, 1)]);
        let mut empty = Vec::new();
        merge_freqs(&mut empty, &a);
        assert_eq!(empty, a);
    }

    #[test]
    fn canonical_codes_are_prefix_free_and_ordered() {
        let lengths = vec![(10u32, 2u8), (20, 2), (30, 3), (40, 3), (50, 3)];
        let canon = canonical_codes(&lengths);
        // All pairs prefix-free.
        for i in 0..canon.len() {
            for j in 0..canon.len() {
                if i == j {
                    continue;
                }
                let (_, ci, li) = canon[i];
                let (_, cj, lj) = canon[j];
                if li <= lj {
                    assert_ne!(ci, cj >> (lj - li), "prefix violation {i} {j}");
                }
            }
        }
    }
}
