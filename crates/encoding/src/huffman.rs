//! Canonical, length-limited Huffman codec over sparse `u32` alphabets.
//!
//! The SZ-style compressor produces quantization codes drawn from a
//! potentially large alphabet (up to 2·radius symbols) but with extremely
//! skewed frequencies — the "prediction hit" code dominates. Only symbols
//! that actually occur are placed in the table; the table itself is
//! serialized as `(symbol, code length)` pairs, and codes are assigned
//! canonically so the decoder rebuilds the table from lengths alone.

use crate::bitio::{BitReader, BitWriter};
use crate::varint;
use crate::{CodecError, Result};
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Longest admissible code. 32 keeps codes inside the bit-I/O fast path;
/// the builder degrades frequencies until the bound holds.
const MAX_CODE_LEN: u8 = 32;

/// Compute code lengths for `(symbol, count)` pairs (all counts > 0).
fn build_lengths(freqs: &[(u32, u64)]) -> Vec<(u32, u8)> {
    assert!(!freqs.is_empty());
    if freqs.len() == 1 {
        return vec![(freqs[0].0, 1)];
    }
    let mut counts: Vec<u64> = freqs.iter().map(|&(_, c)| c).collect();
    loop {
        let lengths = huffman_lengths_once(&counts);
        let max = lengths.iter().copied().max().unwrap();
        if max <= MAX_CODE_LEN {
            return freqs
                .iter()
                .zip(&lengths)
                .map(|(&(s, _), &l)| (s, l))
                .collect();
        }
        // Flatten the distribution and retry; converges because counts
        // approach uniform (which yields ~log2(n) <= 32 for any sane n).
        for c in &mut counts {
            *c = (*c).div_ceil(2);
        }
    }
}

/// One round of Huffman tree construction; returns a length per input slot.
fn huffman_lengths_once(counts: &[u64]) -> Vec<u8> {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        id: usize,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Min-heap by weight; tie-break on id for determinism.
            other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = counts.len();
    // parent[i] for all 2n-1 tree slots; leaves are 0..n.
    let mut parent = vec![usize::MAX; 2 * n - 1];
    let mut heap: BinaryHeap<Node> = counts
        .iter()
        .enumerate()
        .map(|(id, &weight)| Node { weight, id })
        .collect();
    let mut next_id = n;
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        parent[a.id] = next_id;
        parent[b.id] = next_id;
        heap.push(Node {
            weight: a.weight + b.weight,
            id: next_id,
        });
        next_id += 1;
    }
    let root = next_id - 1;
    // Depth of each leaf = code length.
    let mut depth = vec![0u8; 2 * n - 1];
    for id in (0..2 * n - 1).rev() {
        if id == root {
            continue;
        }
        depth[id] = depth[parent[id]] + 1;
    }
    depth.truncate(n);
    depth
}

/// Canonical code assignment from `(symbol, length)` pairs.
///
/// Returns per-symbol `(code, length)` plus the sorted table used for
/// decoding. Sorting is `(length, symbol)` as in DEFLATE.
fn canonical_codes(lengths: &[(u32, u8)]) -> Vec<(u32, u32, u8)> {
    let mut sorted: Vec<(u32, u8)> = lengths.to_vec();
    sorted.sort_by_key(|&(sym, len)| (len, sym));
    let mut out = Vec::with_capacity(sorted.len());
    let mut code = 0u32;
    let mut prev_len = 0u8;
    for &(sym, len) in &sorted {
        code <<= len - prev_len;
        out.push((sym, code, len));
        code += 1;
        prev_len = len;
    }
    out
}

/// Encode `symbols` into a self-describing byte stream.
///
/// Layout: `varint n_symbols · varint table_len · (varint sym, u8 len)* ·
/// bitstream`. An empty input encodes to the minimal 2-byte header.
pub fn encode(symbols: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    varint::write_usize(&mut out, symbols.len());
    if symbols.is_empty() {
        varint::write_usize(&mut out, 0);
        return out;
    }
    let mut freq: HashMap<u32, u64> = HashMap::new();
    for &s in symbols {
        *freq.entry(s).or_insert(0) += 1;
    }
    let mut freqs: Vec<(u32, u64)> = freq.into_iter().collect();
    freqs.sort_unstable_by_key(|&(s, _)| s);
    let lengths = build_lengths(&freqs);
    let canon = canonical_codes(&lengths);
    let mut code_of: HashMap<u32, (u32, u8)> = HashMap::with_capacity(canon.len());
    for &(sym, code, len) in &canon {
        code_of.insert(sym, (code, len));
    }
    varint::write_usize(&mut out, lengths.len());
    // Serialize in canonical order so the decoder rebuilds identically.
    for &(sym, _, len) in &canon {
        varint::write_u64(&mut out, sym as u64);
        out.push(len);
    }
    let mut bw = BitWriter::new();
    for s in symbols {
        let (code, len) = code_of[s];
        bw.write_bits(code as u64, len as u32);
    }
    let bits = bw.finish();
    varint::write_usize(&mut out, bits.len());
    out.extend_from_slice(&bits);
    out
}

/// Decode a stream produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<Vec<u32>> {
    let mut pos = 0usize;
    let n = varint::read_usize(bytes, &mut pos)?;
    let table_len = varint::read_usize(bytes, &mut pos)?;
    if n == 0 {
        return Ok(Vec::new());
    }
    if table_len == 0 {
        return Err(CodecError::Corrupt(
            "empty huffman table for non-empty data",
        ));
    }
    let mut table: Vec<(u32, u8)> = Vec::with_capacity(table_len);
    for _ in 0..table_len {
        let sym = varint::read_u64(bytes, &mut pos)? as u32;
        let len = *bytes.get(pos).ok_or(CodecError::UnexpectedEof)?;
        pos += 1;
        if len == 0 || len > MAX_CODE_LEN {
            return Err(CodecError::Corrupt("invalid code length"));
        }
        table.push((sym, len));
    }
    let canon = canonical_codes(&table);
    // Canonical decoding: for each length, the first code value and the
    // index of its first symbol in canonical order.
    let max_len = canon.iter().map(|&(_, _, l)| l).max().unwrap() as u32;
    let mut first_code = vec![0u64; max_len as usize + 2];
    let mut first_index = vec![0usize; max_len as usize + 2];
    let mut count_per_len = vec![0usize; max_len as usize + 1];
    for &(_, _, l) in &canon {
        count_per_len[l as usize] += 1;
    }
    {
        let mut code = 0u64;
        let mut index = 0usize;
        for len in 1..=max_len as usize {
            first_code[len] = code;
            first_index[len] = index;
            code = (code + count_per_len[len] as u64) << 1;
            index += count_per_len[len];
        }
    }
    let symbols_in_order: Vec<u32> = canon.iter().map(|&(s, _, _)| s).collect();

    let bits_len = varint::read_usize(bytes, &mut pos)?;
    if pos + bits_len > bytes.len() {
        return Err(CodecError::UnexpectedEof);
    }
    let mut br = BitReader::new(&bytes[pos..pos + bits_len]);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut code = 0u64;
        let mut len = 0usize;
        loop {
            code = (code << 1) | br.read_bit()? as u64;
            len += 1;
            if len > max_len as usize {
                return Err(CodecError::Corrupt("code longer than table max"));
            }
            let offset = code.wrapping_sub(first_code[len]);
            if count_per_len[len] > 0
                && code >= first_code[len]
                && (offset as usize) < count_per_len[len]
            {
                out.push(symbols_in_order[first_index[len] + offset as usize]);
                break;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_empty_single_and_uniform() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<u32>::new());
        assert_eq!(decode(&encode(&[42])).unwrap(), vec![42]);
        assert_eq!(
            decode(&encode(&[7, 7, 7, 7, 7])).unwrap(),
            vec![7, 7, 7, 7, 7]
        );
        let uniform: Vec<u32> = (0..256).collect();
        assert_eq!(decode(&encode(&uniform)).unwrap(), uniform);
    }

    #[test]
    fn roundtrip_skewed_distribution() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut data = Vec::with_capacity(50_000);
        for _ in 0..50_000 {
            // 90% symbol 1000, remainder spread wide — the SZ shape.
            if rng.gen_bool(0.9) {
                data.push(1000u32);
            } else {
                data.push(rng.gen_range(0..4000));
            }
        }
        let enc = encode(&data);
        assert_eq!(decode(&enc).unwrap(), data);
        // Skew means far under 2 bytes/symbol.
        assert!(
            enc.len() < data.len(),
            "enc {} data {}",
            enc.len(),
            data.len()
        );
    }

    #[test]
    fn compression_beats_raw_on_low_entropy() {
        let data = vec![3u32; 10_000];
        let enc = encode(&data);
        // 10k symbols at 1 bit ≈ 1.25 kB + header.
        assert!(enc.len() < 1400, "got {}", enc.len());
    }

    #[test]
    fn decode_rejects_truncation() {
        let data: Vec<u32> = (0..100).map(|i| i % 7).collect();
        let enc = encode(&data);
        for cut in [1, enc.len() / 2, enc.len() - 1] {
            assert!(decode(&enc[..cut]).is_err(), "cut {cut} should fail");
        }
    }

    #[test]
    fn large_alphabet_roundtrip() {
        let mut rng = StdRng::seed_from_u64(12);
        let data: Vec<u32> = (0..20_000).map(|_| rng.gen_range(0..65_536)).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn canonical_codes_are_prefix_free_and_ordered() {
        let lengths = vec![(10u32, 2u8), (20, 2), (30, 3), (40, 3), (50, 3)];
        let canon = canonical_codes(&lengths);
        // All pairs prefix-free.
        for i in 0..canon.len() {
            for j in 0..canon.len() {
                if i == j {
                    continue;
                }
                let (_, ci, li) = canon[i];
                let (_, cj, lj) = canon[j];
                if li <= lj {
                    assert_ne!(ci, cj >> (lj - li), "prefix violation {i} {j}");
                }
            }
        }
    }
}
