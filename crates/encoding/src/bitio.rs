//! MSB-first bit-level I/O over in-memory byte buffers.

use crate::{CodecError, Result};

/// Accumulates bits MSB-first into a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits staged in the low end of `acc`, always < 8 between calls.
    /// Bits above `nbits` are stale; every extraction truncates them.
    nbits: u32,
    acc: u64,
}

impl BitWriter {
    /// Fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the low `n` bits of `value` (MSB of those bits first). `n ≤ 57`
    /// keeps the shifted accumulator in range; codes here never exceed 32.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 57);
        debug_assert!(n == 64 || value < (1u64 << n));
        // `nbits < 8` on entry, so `nbits + n ≤ 64` and one shift stages
        // everything; whole bytes then drain from just below `nbits`.
        self.acc = (self.acc << n) | value;
        self.nbits += n;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.bytes.push((self.acc >> self.nbits) as u8);
        }
    }

    /// Pad with zero bits to a byte boundary and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.bytes.push((self.acc << (8 - self.nbits)) as u8);
        }
        self.bytes
    }

    /// Number of complete bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.nbits as usize
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next bit position.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Reader over `bytes`, starting at bit 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Read `n` bits as the low bits of a `u64`.
    pub fn read_bits(&mut self, n: u32) -> Result<u64> {
        debug_assert!(n <= 57);
        if self.pos + n as usize > self.bytes.len() * 8 {
            return Err(CodecError::UnexpectedEof);
        }
        let mut out = 0u64;
        let mut left = n;
        while left > 0 {
            let byte = self.bytes[self.pos / 8];
            let bit_off = (self.pos % 8) as u32;
            let avail = 8 - bit_off;
            let take = avail.min(left);
            let chunk = (byte >> (avail - take)) & ((1u16 << take) - 1) as u8;
            out = (out << take) | chunk as u64;
            self.pos += take as usize;
            left -= take;
        }
        Ok(out)
    }

    /// Read a single bit.
    pub fn read_bit(&mut self) -> Result<u32> {
        Ok(self.read_bits(1)? as u32)
    }

    /// Peek the next `n` bits (1 ≤ n ≤ 57) without consuming them.
    ///
    /// Positions past the end of the buffer read as zero bits, which lets
    /// a table-driven decoder probe a full window near the end of a
    /// stream; pair with [`consume`](BitReader::consume), which *does*
    /// bounds-check, so over-reads surface as errors.
    pub fn peek_bits(&self, n: u32) -> u64 {
        debug_assert!((1..=57).contains(&n));
        let byte = self.pos >> 3;
        let off = (self.pos & 7) as u32;
        let acc = if byte + 8 <= self.bytes.len() {
            u64::from_be_bytes(self.bytes[byte..byte + 8].try_into().unwrap())
        } else {
            let mut a = 0u64;
            for i in 0..8 {
                a = (a << 8) | *self.bytes.get(byte + i).unwrap_or(&0) as u64;
            }
            a
        };
        // Dropping the high `off` bits discards already-consumed bits.
        (acc << off) >> (64 - n)
    }

    /// Advance the cursor by `n` bits previously inspected via
    /// [`peek_bits`](BitReader::peek_bits).
    pub fn consume(&mut self, n: u32) -> Result<()> {
        if self.pos + n as usize > self.bytes.len() * 8 {
            return Err(CodecError::UnexpectedEof);
        }
        self.pos += n as usize;
        Ok(())
    }

    /// Bits remaining in the buffer (including trailing padding).
    pub fn remaining_bits(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0b1011, 4);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(0, 7);
        w.write_bits(0x1FFFF, 17);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bits(7).unwrap(), 0);
        assert_eq!(r.read_bits(17).unwrap(), 0x1FFFF);
    }

    #[test]
    fn eof_detected() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bits(8).is_ok());
        assert_eq!(r.read_bits(1), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn padding_is_zero_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1010_0000]);
    }

    #[test]
    fn bit_len_tracks_progress() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 3);
        assert_eq!(w.bit_len(), 3);
        w.write_bits(0, 13);
        assert_eq!(w.bit_len(), 16);
    }

    #[test]
    fn peek_does_not_consume_and_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write_bits(0b101_1011_0101, 11);
        let bytes = w.finish(); // 2 bytes, 5 padding zero bits
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(11), 0b101_1011_0101);
        assert_eq!(r.peek_bits(11), 0b101_1011_0101, "peek must not advance");
        r.consume(3).unwrap();
        assert_eq!(r.peek_bits(8), 0b1011_0101);
        // Peeking past the end pads with zeros…
        r.consume(8).unwrap();
        assert_eq!(r.remaining_bits(), 5);
        assert_eq!(r.peek_bits(12), 0);
        // …but consuming past the end is an error.
        assert_eq!(r.consume(6), Err(CodecError::UnexpectedEof));
        assert!(r.consume(5).is_ok());
    }

    #[test]
    fn interleaved_single_bits() {
        let mut w = BitWriter::new();
        let pattern = [1u64, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1];
        for &b in &pattern {
            w.write_bits(b, 1);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap() as u64, b);
        }
    }
}
