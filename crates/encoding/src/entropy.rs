//! The pluggable **entropy-stage seam**: one tag byte, two backends.
//!
//! Chunk-framed streams record, per frame, which entropy coder produced
//! the frame's payload:
//!
//! | tag | backend | payload |
//! |-----|---------|---------|
//! | `0` | [`huffman`] | table-less canonical-Huffman block (`varint n · varint bits_len · bits`) |
//! | `1` | [`range`] | adaptive binary range-coder bytes |
//!
//! Neither payload carries a trailing LZ pass: entropy-coded bytes are
//! near-incompressible on mid/high-entropy chunks, and the skewed chunks
//! where run collapsing would pay route to the range coder (whose
//! run-context bit model absorbs the runs). Format-2 streams predate the
//! tag byte; their bodies decode as the implicit Huffman tag with the
//! historical LZ wrapper, which the frame layer strips before reaching
//! this seam. Both backends are lossless over the symbol stream, so
//! per-chunk selection can never change decoded values — only the bytes
//! in between.

use crate::{huffman, range, CodecError, Result};

/// Per-frame entropy-stage tag (one byte on the wire).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntropyStageTag {
    /// Shared-codebook canonical Huffman (table-less block).
    Huffman = 0,
    /// Codebook-free adaptive binary range coder.
    Range = 1,
}

impl EntropyStageTag {
    /// Wire byte for this tag.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Parse a wire byte; unknown tags are corruption, not a fallback.
    pub fn from_u8(b: u8) -> Result<EntropyStageTag> {
        match b {
            0 => Ok(EntropyStageTag::Huffman),
            1 => Ok(EntropyStageTag::Range),
            _ => Err(CodecError::Corrupt("unknown entropy-stage tag")),
        }
    }
}

/// Encode-side backend handle: borrows the shared codebook (Huffman) or
/// carries the fold center (range). One `encode_block` call produces the
/// full frame payload for its tag.
#[derive(Clone, Copy)]
pub enum EntropyEncoder<'a> {
    Huffman(&'a huffman::Codebook),
    Range { center: u32 },
}

impl EntropyEncoder<'_> {
    /// The tag this encoder writes.
    pub fn tag(&self) -> EntropyStageTag {
        match self {
            EntropyEncoder::Huffman(_) => EntropyStageTag::Huffman,
            EntropyEncoder::Range { .. } => EntropyStageTag::Range,
        }
    }

    /// Entropy-code one chunk's symbols into a frame payload. The
    /// per-frame backend choice is counted in the metrics registry
    /// (`encoding.entropy.huffman` / `encoding.entropy.range`), making
    /// the auto-selector's routing observable per run.
    pub fn encode_block(&self, codes: &[u32]) -> Vec<u8> {
        match self {
            EntropyEncoder::Huffman(codebook) => {
                ebtrain_obs::counter_add("encoding.entropy.huffman", 1);
                let mut block = Vec::new();
                codebook.encode_block(codes, &mut block);
                block
            }
            EntropyEncoder::Range { center } => {
                ebtrain_obs::counter_add("encoding.entropy.range", 1);
                range::encode_block(codes, *center)
            }
        }
    }
}

/// Decode-side backend handle, symmetric to [`EntropyEncoder`].
#[derive(Clone, Copy)]
pub enum EntropyDecoder<'a> {
    Huffman(&'a huffman::Decoder),
    Range { center: u32 },
}

impl EntropyDecoder<'_> {
    /// Decode a frame payload back to exactly `n` symbols. `n` comes
    /// from validated framing (the chunk layout), which bounds every
    /// allocation here; trailing payload bytes are corruption.
    pub fn decode_block(&self, payload: &[u8], n: usize) -> Result<Vec<u32>> {
        let codes = match self {
            EntropyDecoder::Huffman(decoder) => {
                let mut pos = 0usize;
                let codes = decoder.decode_block(payload, &mut pos)?;
                if pos != payload.len() {
                    return Err(CodecError::Corrupt("trailing bytes in huffman block"));
                }
                codes
            }
            EntropyDecoder::Range { center } => range::decode_block(payload, n, *center)?,
        };
        if codes.len() != n {
            return Err(CodecError::Corrupt("code count mismatch"));
        }
        Ok(codes)
    }
}

/// Shannon entropy (bits/symbol) of a `(symbol, count)` histogram — the
/// cheap estimate per-chunk backend selection keys on.
pub fn histogram_entropy(freqs: &[(u32, u64)]) -> f64 {
    let total: u64 = freqs.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return 0.0;
    }
    let total_f = total as f64;
    let mut h = 0.0;
    for &(_, c) in freqs {
        if c > 0 {
            let p = c as f64 / total_f;
            h -= p * p.log2();
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip_and_reject_unknown() {
        for tag in [EntropyStageTag::Huffman, EntropyStageTag::Range] {
            assert_eq!(EntropyStageTag::from_u8(tag.as_u8()).unwrap(), tag);
        }
        assert!(EntropyStageTag::from_u8(2).is_err());
        assert!(EntropyStageTag::from_u8(0xFF).is_err());
    }

    #[test]
    fn both_backends_roundtrip_the_same_symbols() {
        let center = 512u32;
        let codes: Vec<u32> = (0..3000)
            .map(|i| match i % 7 {
                0 => center + 2,
                1..=4 => center,
                5 => center - 3,
                _ => 0, // outlier marker
            })
            .collect();
        let freqs = huffman::count_freqs(&codes);
        let codebook = huffman::Codebook::from_freqs(&freqs);
        let mut table = Vec::new();
        codebook.serialize(&mut table);
        let mut tpos = 0usize;
        let decoder = huffman::Decoder::deserialize(&table, &mut tpos).unwrap();

        for (enc, dec) in [
            (
                EntropyEncoder::Huffman(&codebook),
                EntropyDecoder::Huffman(&decoder),
            ),
            (
                EntropyEncoder::Range { center },
                EntropyDecoder::Range { center },
            ),
        ] {
            let payload = enc.encode_block(&codes);
            let back = dec.decode_block(&payload, codes.len()).unwrap();
            assert_eq!(back, codes, "{:?} backend", enc.tag());
        }
    }

    #[test]
    fn wrong_symbol_count_is_corruption() {
        let payload = EntropyEncoder::Range { center: 10 }.encode_block(&[10, 10, 11]);
        let dec = EntropyDecoder::Range { center: 10 };
        assert!(dec.decode_block(&payload, 3).is_ok());
        // Asking for more symbols than encoded either errs or returns
        // garbage — but with a count mismatch it must err, never panic.
        let _ = dec.decode_block(&payload, 4);
    }

    #[test]
    fn entropy_estimate_matches_known_distributions() {
        assert_eq!(histogram_entropy(&[]), 0.0);
        assert_eq!(histogram_entropy(&[(5, 100)]), 0.0);
        let h = histogram_entropy(&[(0, 50), (1, 50)]);
        assert!((h - 1.0).abs() < 1e-12);
        let h = histogram_entropy(&[(0, 25), (1, 25), (2, 25), (3, 25)]);
        assert!((h - 2.0).abs() < 1e-12);
    }
}
