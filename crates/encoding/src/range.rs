//! Codebook-free adaptive **binary range coder** — the second entropy
//! backend selectable per chunk frame (see [`crate::entropy`]).
//!
//! The coder keeps a 32-bit `[low, high]` interval and splits it at every
//! step by a 12-bit adaptive probability (carry-less renormalization: a
//! byte is emitted whenever the top bytes of `low` and `high` agree, as in
//! lpaq-family coders). No table is ever serialized: the probability
//! models start from 1/2 on both sides and adapt symmetrically, so the
//! decoder reconstructs the exact model trajectory from the bits alone.
//!
//! On top of the bit coder sits a symbol layer tuned to quantization
//! codes: values are folded (zigzag) around a caller-supplied *center*
//! (the quantizer's zero point, where Lorenzo-residual histograms peak)
//! and coded as a run-context "hit" flag plus an adaptive Elias-gamma
//! magnitude. Skewed histograms cost ~a saturated bit per element —
//! denser *and* cheaper than a 1-bit-minimum Huffman code — while wide
//! histograms (tight bounds) avoid deep-codebook and table-serialization
//! overhead entirely.

use crate::{CodecError, Result};

/// Probability precision: models hold `P(bit = 1)` scaled to 12 bits.
const PROB_BITS: u32 = 12;
const PROB_ONE: u32 = 1 << PROB_BITS;
/// Adaptation rate: each update moves the estimate 1/32 toward the
/// observed bit. Fast enough to saturate within a chunk, slow enough not
/// to thrash on noisy symbols.
const ADAPT_SHIFT: u32 = 5;

/// Longest magnitude-class unary prefix: zigzagged u32 deltas span
/// `[0, 2^33)`, so the gamma bit-length never exceeds 33. Anything longer
/// in a stream is corruption.
const MAX_GAMMA_BITS: usize = 33;

/// Mantissa bits modeled adaptively, counted down from the leading one.
/// Deeper bits of a Laplacian residual are close to uniform, so they are
/// coded as raw (p = 1/2, model-free) splits — about half the per-bit
/// cost, which dominates encode time on deep alphabets (tight bounds).
const MODELED_MANT_BITS: usize = 2;

/// One adaptive binary probability (12-bit, 1/32 update rate).
#[derive(Clone, Copy, Debug)]
pub struct BitModel {
    p: u16,
}

impl BitModel {
    /// Fresh model: both bits equally likely.
    pub fn new() -> BitModel {
        BitModel {
            p: (PROB_ONE / 2) as u16,
        }
    }

    #[inline(always)]
    fn update(&mut self, bit: u32) {
        if bit == 1 {
            self.p += ((PROB_ONE - self.p as u32) >> ADAPT_SHIFT) as u16;
        } else {
            self.p -= self.p >> ADAPT_SHIFT;
        }
    }
}

impl Default for BitModel {
    fn default() -> Self {
        BitModel::new()
    }
}

/// Encoder half of the bit coder.
pub struct RangeEncoder {
    low: u32,
    high: u32,
    out: Vec<u8>,
}

impl RangeEncoder {
    pub fn new() -> RangeEncoder {
        RangeEncoder {
            low: 0,
            high: u32::MAX,
            out: Vec::new(),
        }
    }

    /// Code one bit under `model`, then adapt the model.
    #[inline(always)]
    pub fn encode_bit(&mut self, model: &mut BitModel, bit: u32) {
        let range = self.high - self.low;
        let mid = self.low
            + (range >> PROB_BITS) * model.p as u32
            + (((range & (PROB_ONE - 1)) * model.p as u32) >> PROB_BITS);
        if bit == 1 {
            self.high = mid;
        } else {
            self.low = mid + 1;
        }
        model.update(bit);
        while (self.low ^ self.high) & 0xFF00_0000 == 0 {
            self.out.push((self.high >> 24) as u8);
            self.low <<= 8;
            self.high = (self.high << 8) | 0xFF;
        }
    }

    /// Code one bit at a fixed 1/2 split — no model load or update.
    #[inline(always)]
    pub fn encode_raw_bit(&mut self, bit: u32) {
        let mid = self.low + ((self.high - self.low) >> 1);
        if bit == 1 {
            self.high = mid;
        } else {
            self.low = mid + 1;
        }
        while (self.low ^ self.high) & 0xFF00_0000 == 0 {
            self.out.push((self.high >> 24) as u8);
            self.low <<= 8;
            self.high = (self.high << 8) | 0xFF;
        }
    }

    /// Flush: emit a full codeword inside `[low, high]` so the decoder
    /// lands in the final interval regardless of zero padding.
    pub fn finish(mut self) -> Vec<u8> {
        self.out.extend_from_slice(&self.high.to_be_bytes());
        self.out
    }
}

impl Default for RangeEncoder {
    fn default() -> Self {
        RangeEncoder::new()
    }
}

/// Decoder half: mirrors the encoder's interval arithmetic exactly.
/// Reads past the end of the input yield zero bytes — framing above this
/// layer bounds the symbol count, so truncation surfaces as garbage
/// symbols caught by the caller's structural checks, never as a panic.
pub struct RangeDecoder<'a> {
    low: u32,
    high: u32,
    code: u32,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    pub fn new(bytes: &'a [u8]) -> RangeDecoder<'a> {
        let mut d = RangeDecoder {
            low: 0,
            high: u32::MAX,
            code: 0,
            bytes,
            pos: 0,
        };
        for _ in 0..4 {
            d.code = (d.code << 8) | d.next_byte() as u32;
        }
        d
    }

    #[inline(always)]
    fn next_byte(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Decode one bit under `model`, then adapt the model.
    #[inline(always)]
    pub fn decode_bit(&mut self, model: &mut BitModel) -> u32 {
        let range = self.high - self.low;
        let mid = self.low
            + (range >> PROB_BITS) * model.p as u32
            + (((range & (PROB_ONE - 1)) * model.p as u32) >> PROB_BITS);
        let bit = (self.code <= mid) as u32;
        if bit == 1 {
            self.high = mid;
        } else {
            self.low = mid + 1;
        }
        model.update(bit);
        while (self.low ^ self.high) & 0xFF00_0000 == 0 {
            self.low <<= 8;
            self.high = (self.high << 8) | 0xFF;
            self.code = (self.code << 8) | self.next_byte() as u32;
        }
        bit
    }

    /// Decode one bit coded by [`RangeEncoder::encode_raw_bit`].
    #[inline(always)]
    pub fn decode_raw_bit(&mut self) -> u32 {
        let mid = self.low + ((self.high - self.low) >> 1);
        let bit = (self.code <= mid) as u32;
        if bit == 1 {
            self.high = mid;
        } else {
            self.low = mid + 1;
        }
        while (self.low ^ self.high) & 0xFF00_0000 == 0 {
            self.low <<= 8;
            self.high = (self.high << 8) | 0xFF;
            self.code = (self.code << 8) | self.next_byte() as u32;
        }
        bit
    }
}

/// Adaptive model for center-folded quantization codes: a run-context hit
/// flag (was the previous symbol also the center?) plus an adaptive
/// Elias-gamma magnitude (unary length class, then mantissa bits, every
/// bit under its own adaptive probability).
pub struct SymbolModel {
    hit: [BitModel; 2],
    len: [BitModel; MAX_GAMMA_BITS + 1],
    mant: [BitModel; MAX_GAMMA_BITS],
    prev_hit: usize,
}

impl SymbolModel {
    pub fn new() -> SymbolModel {
        SymbolModel {
            hit: [BitModel::new(); 2],
            len: [BitModel::new(); MAX_GAMMA_BITS + 1],
            mant: [BitModel::new(); MAX_GAMMA_BITS],
            prev_hit: 1,
        }
    }
}

impl Default for SymbolModel {
    fn default() -> Self {
        SymbolModel::new()
    }
}

/// Fold `v` around `center`: 0 for the center itself, then alternating
/// above/below distances (the Laplacian-friendly zigzag).
#[inline(always)]
fn fold(v: u32, center: u32) -> u64 {
    if v >= center {
        2 * (v as u64 - center as u64)
    } else {
        2 * (center as u64 - v as u64) - 1
    }
}

/// Inverse of [`fold`]; errors when the stream names a value outside u32.
#[inline(always)]
fn unfold(m: u64, center: u32) -> Result<u32> {
    if m.is_multiple_of(2) {
        let v = center as u64 + m / 2;
        u32::try_from(v).map_err(|_| CodecError::Corrupt("range symbol above u32"))
    } else {
        let d = m / 2 + 1;
        if d > center as u64 {
            return Err(CodecError::Corrupt("range symbol below zero"));
        }
        Ok(center - d as u32)
    }
}

/// Entropy-code a block of symbols around `center`. The symbol count is
/// *not* stored — framing above this layer carries it (the chunk layout
/// fixes it), exactly as the Huffman block stores only what the decoder
/// cannot derive.
pub fn encode_block(codes: &[u32], center: u32) -> Vec<u8> {
    let mut enc = RangeEncoder::new();
    let mut model = SymbolModel::new();
    for &v in codes {
        let m = fold(v, center);
        if m == 0 {
            enc.encode_bit(&mut model.hit[model.prev_hit], 1);
            model.prev_hit = 1;
        } else {
            enc.encode_bit(&mut model.hit[model.prev_hit], 0);
            model.prev_hit = 0;
            // Gamma: k = floor(log2(m)) as an adaptive unary class, then
            // the k mantissa bits below the leading one.
            let k = (63 - m.leading_zeros()) as usize;
            for i in 0..k {
                enc.encode_bit(&mut model.len[i], 1);
            }
            enc.encode_bit(&mut model.len[k], 0);
            // Top mantissa bits carry residual structure and stay
            // modeled; the rest are near-uniform and go as raw splits.
            let raw_below = k.saturating_sub(MODELED_MANT_BITS);
            for i in (raw_below..k).rev() {
                enc.encode_bit(&mut model.mant[i], ((m >> i) & 1) as u32);
            }
            for i in (0..raw_below).rev() {
                enc.encode_raw_bit(((m >> i) & 1) as u32);
            }
        }
    }
    enc.finish()
}

/// Decode exactly `n` symbols coded by [`encode_block`] with the same
/// `center`. Output allocation is bounded by `n`, which the caller
/// derives from validated framing — a corrupt payload can produce wrong
/// symbols (caught structurally upstream) but never oversized output.
pub fn decode_block(bytes: &[u8], n: usize, center: u32) -> Result<Vec<u32>> {
    let mut dec = RangeDecoder::new(bytes);
    let mut model = SymbolModel::new();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if dec.decode_bit(&mut model.hit[model.prev_hit]) == 1 {
            model.prev_hit = 1;
            out.push(center);
            continue;
        }
        model.prev_hit = 0;
        let mut k = 0usize;
        while dec.decode_bit(&mut model.len[k]) == 1 {
            k += 1;
            if k > MAX_GAMMA_BITS {
                return Err(CodecError::Corrupt("range gamma class overflow"));
            }
        }
        let mut m = 1u64;
        let raw_below = k.saturating_sub(MODELED_MANT_BITS);
        for i in (raw_below..k).rev() {
            m = (m << 1) | dec.decode_bit(&mut model.mant[i]) as u64;
        }
        for _ in 0..raw_below {
            m = (m << 1) | dec.decode_raw_bit() as u64;
        }
        out.push(unfold(m, center)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip_skewed_and_alternating() {
        let patterns: Vec<Vec<u32>> = vec![
            vec![1; 4000],
            vec![0; 4000],
            (0..4000).map(|i| (i % 2) as u32).collect(),
            (0..4000).map(|i| ((i * 7) % 5 == 0) as u32).collect(),
        ];
        for bits in patterns {
            let mut enc = RangeEncoder::new();
            let mut m = BitModel::new();
            for &b in &bits {
                enc.encode_bit(&mut m, b);
            }
            let bytes = enc.finish();
            let mut dec = RangeDecoder::new(&bytes);
            let mut m = BitModel::new();
            for (i, &b) in bits.iter().enumerate() {
                assert_eq!(dec.decode_bit(&mut m), b, "bit {i}");
            }
        }
    }

    #[test]
    fn skewed_bits_compress_far_below_raw() {
        let mut enc = RangeEncoder::new();
        let mut m = BitModel::new();
        for i in 0..32_768 {
            enc.encode_bit(&mut m, (i % 100 == 0) as u32);
        }
        let bytes = enc.finish();
        // 32768 bits at ~1% ones: an adaptive coder needs ~0.08 bpb.
        assert!(bytes.len() < 800, "got {} bytes", bytes.len());
    }

    #[test]
    fn symbol_block_roundtrip_extremes() {
        let center = 32_768u32;
        let blocks: Vec<Vec<u32>> = vec![
            vec![],
            vec![center],
            vec![0],
            vec![u32::MAX],
            vec![center; 5000],
            (0..5000u32).collect(),
            (0..5000)
                .map(|i| center.wrapping_add((i % 11) as u32) - 5)
                .collect(),
            vec![0, u32::MAX, center, center - 1, center + 1],
        ];
        for codes in blocks {
            let bytes = encode_block(&codes, center);
            let back = decode_block(&bytes, codes.len(), center).unwrap();
            assert_eq!(back, codes);
        }
    }

    #[test]
    fn center_zero_and_center_max_roundtrip() {
        for center in [0u32, 1, u32::MAX] {
            let codes: Vec<u32> = (0..200)
                .map(|i| center.wrapping_add(i).wrapping_sub(100))
                .collect();
            let bytes = encode_block(&codes, center);
            assert_eq!(decode_block(&bytes, codes.len(), center).unwrap(), codes);
        }
    }

    #[test]
    fn skewed_symbols_beat_one_bit_per_symbol() {
        let center = 32_768u32;
        let codes: Vec<u32> = (0..16_384)
            .map(|i| if i % 50 == 0 { center + 3 } else { center })
            .collect();
        let bytes = encode_block(&codes, center);
        assert!(
            bytes.len() * 8 < codes.len() / 2,
            "{} bytes for {} near-constant symbols",
            bytes.len(),
            codes.len()
        );
    }

    #[test]
    fn truncated_payload_never_panics() {
        let center = 100u32;
        let codes: Vec<u32> = (0..500).map(|i| 90 + (i % 20) as u32).collect();
        let bytes = encode_block(&codes, center);
        for cut in 0..bytes.len() {
            // Must return (possibly wrong symbols or Err), never panic.
            let _ = decode_block(&bytes[..cut], codes.len(), center);
        }
    }
}
