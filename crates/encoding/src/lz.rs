//! Greedy LZ77 block codec (LZ4-style token format).
//!
//! Used as the final lossless stage of both compressors: Huffman output on
//! heavily-skewed quantization-code streams still contains long repeated
//! byte patterns (runs of the dominant code), which a small-window LZ pass
//! collapses — playing the role of the general-purpose lossless pass that
//! SZ chains after its entropy stage.
//!
//! Format per sequence: `token(1B)` = `(lit_len:4 | match_len-4:4)`, with
//! 15 meaning "extended by 255-run bytes"; then literal bytes; then a
//! little-endian `u16` match offset (1..=65535) and the match-length
//! extension. The stream opens with a varint of the decompressed size and
//! ends on a literals-only sequence.

use crate::varint;
use crate::{CodecError, Result};

const MIN_MATCH: usize = 4;
const HASH_BITS: u32 = 16;
const HASH_SIZE: usize = 1 << HASH_BITS;
const MAX_OFFSET: usize = 65_535;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

fn write_len_ext(out: &mut Vec<u8>, mut extra: usize) {
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    out.push(extra as u8);
}

fn read_len_ext(bytes: &[u8], pos: &mut usize) -> Result<usize> {
    let mut total = 0usize;
    loop {
        let b = *bytes.get(*pos).ok_or(CodecError::UnexpectedEof)?;
        *pos += 1;
        total += b as usize;
        if b != 255 {
            return Ok(total);
        }
    }
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], m: Option<(usize, usize)>) {
    let lit_nib = literals.len().min(15) as u8;
    let match_nib = match m {
        Some((_, mlen)) => (mlen - MIN_MATCH).min(15) as u8,
        None => 0,
    };
    out.push((lit_nib << 4) | match_nib);
    if literals.len() >= 15 {
        write_len_ext(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    if let Some((offset, mlen)) = m {
        debug_assert!((1..=MAX_OFFSET).contains(&offset));
        out.extend_from_slice(&(offset as u16).to_le_bytes());
        if mlen - MIN_MATCH >= 15 {
            write_len_ext(out, mlen - MIN_MATCH - 15);
        }
    }
}

/// Compress `data`; always succeeds (worst case mildly expands).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let n = data.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    varint::write_usize(&mut out, n);
    if n == 0 {
        return out;
    }
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut anchor = 0usize;
    let mut i = 0usize;
    while i + MIN_MATCH <= n {
        let h = hash4(&data[i..]);
        let cand = head[h];
        head[h] = i;
        let is_match = cand != usize::MAX
            && i - cand <= MAX_OFFSET
            && data[cand..cand + MIN_MATCH] == data[i..i + MIN_MATCH];
        if is_match {
            let mut mlen = MIN_MATCH;
            while i + mlen < n && data[cand + mlen] == data[i + mlen] {
                mlen += 1;
            }
            emit_sequence(&mut out, &data[anchor..i], Some((i - cand, mlen)));
            // Seed a hash inside the match so adjacent runs keep chaining.
            if i + mlen + MIN_MATCH <= n {
                let j = i + mlen - 2;
                if j + MIN_MATCH <= n {
                    head[hash4(&data[j..])] = j;
                }
            }
            i += mlen;
            anchor = i;
        } else {
            i += 1;
        }
    }
    emit_sequence(&mut out, &data[anchor..], None);
    out
}

/// Decompress a [`compress`] stream.
pub fn decompress(bytes: &[u8]) -> Result<Vec<u8>> {
    let mut pos = 0usize;
    let n = varint::read_usize(bytes, &mut pos)?;
    // Cap the up-front reservation: a corrupt size claim should fail via
    // the overrun checks below, not by reserving the claimed bytes.
    let mut out = Vec::with_capacity(n.min(bytes.len().saturating_mul(256)));
    if n == 0 {
        return Ok(out);
    }
    loop {
        let token = *bytes.get(pos).ok_or(CodecError::UnexpectedEof)?;
        pos += 1;
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len += read_len_ext(bytes, &mut pos)?;
        }
        if pos + lit_len > bytes.len() {
            return Err(CodecError::UnexpectedEof);
        }
        out.extend_from_slice(&bytes[pos..pos + lit_len]);
        pos += lit_len;
        if out.len() >= n {
            if out.len() > n {
                return Err(CodecError::Corrupt("output overrun"));
            }
            return Ok(out);
        }
        if pos + 2 > bytes.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let offset = u16::from_le_bytes([bytes[pos], bytes[pos + 1]]) as usize;
        pos += 2;
        if offset == 0 || offset > out.len() {
            return Err(CodecError::Corrupt("bad match offset"));
        }
        let mut mlen = (token & 0x0F) as usize + MIN_MATCH;
        if mlen - MIN_MATCH == 15 {
            mlen += read_len_ext(bytes, &mut pos)?;
        }
        if out.len() + mlen > n {
            return Err(CodecError::Corrupt("match overruns output"));
        }
        // Overlapping copies (offset < mlen) are the RLE case; copy bytewise.
        let start = out.len() - offset;
        for k in 0..mlen {
            let b = out[start + k];
            out.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip(data: &[u8]) -> usize {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data, "roundtrip failed");
        c.len()
    }

    #[test]
    fn roundtrip_edge_cases() {
        roundtrip(&[]);
        roundtrip(&[1]);
        roundtrip(&[1, 2, 3]);
        roundtrip(&[0; 4]);
        roundtrip(b"abcdabcdabcdabcd");
    }

    #[test]
    fn long_zero_runs_collapse() {
        let data = vec![0u8; 1_000_000];
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() < 5_000, "1MB of zeros -> {} bytes", c.len());
    }

    #[test]
    fn repeated_pattern_collapses() {
        let data: Vec<u8> = (0..100_000).map(|i| (i % 13) as u8).collect();
        let c = roundtrip(&data);
        assert!(c < data.len() / 10, "pattern -> {c} bytes");
    }

    #[test]
    fn incompressible_random_expands_only_slightly() {
        let mut rng = StdRng::seed_from_u64(13);
        let data: Vec<u8> = (0..100_000).map(|_| rng.gen()).collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() < data.len() + data.len() / 16 + 64);
    }

    #[test]
    fn mixed_text_roundtrip() {
        let data = b"the quick brown fox jumps over the lazy dog, \
                     the quick brown fox jumps over the lazy dog, \
                     the quick brown fox jumps over the lazy dog!"
            .to_vec();
        let c = roundtrip(&data);
        assert!(c < data.len());
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 7) as u8).collect();
        let c = compress(&data);
        assert!(decompress(&c[..c.len() / 2]).is_err());
        // Flip a byte in the body; must not panic (error or wrong data ok).
        let mut bad = c.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        let _ = decompress(&bad);
    }

    #[test]
    fn overlapping_match_rle_semantics() {
        // "aaaaa..." forces offset-1 overlapping matches.
        let data = vec![b'a'; 300];
        roundtrip(&data);
    }
}
