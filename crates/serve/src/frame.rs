//! Wire framing of the serve protocol (DESIGN.md §10).
//!
//! Everything on the wire is a **length-prefixed frame** with a fixed
//! header; integers are big-endian, payload bodies are RPC-specific.
//!
//! ```text
//! request:   EB 5E | ver | tag    | tenant u32 | len u32 | payload[len]
//! response:  EB 5E | ver | status | len u32 | payload[len]
//! ```
//!
//! `status` is `0` for success, else an [`ErrorCode`]; an error
//! response's payload is a UTF-8 message. The declared `len` is
//! validated against the connection's payload ceiling **before** any
//! allocation, so a hostile header cannot drive an unbounded `Vec`
//! (the `ebtrain-obs::netutil` bounded-read path both listeners share).
//!
//! Parsing is total: every byte sequence maps to `Ok` or a typed
//! [`FrameError`] — never a panic. The hardening tests feed every
//! prefix of a valid frame plus corrupted magic/version/tag bytes
//! through this module, mirroring the codec conformance suite.

use ebtrain_obs::netutil::{
    get_f32, get_u32, get_u64, get_u8, put_f32, put_u32, put_u64, read_exact_limited,
};
use ebtrain_sz::DataLayout;
use std::io::{self, Read, Write};

/// Frame magic: `0xEB 0x5E` ("EB SErve"). Distinct from the
/// `TaggedStream` container magic (`0xEB 0xC0`), so a tensor stream
/// accidentally sent where a frame belongs is rejected at byte 1.
pub const MAGIC: [u8; 2] = [0xEB, 0x5E];

/// Protocol version this build speaks. Versioning rule (DESIGN.md
/// §10): bump only for changes an old parser would misread; adding a
/// request tag is *not* a version bump (old servers answer
/// `UnknownTag`), changing the header layout is.
pub const VERSION: u8 = 1;

/// Request header size: magic + version + tag + tenant + length.
pub const REQUEST_HEADER_LEN: usize = 12;

/// Response header size: magic + version + status + length.
pub const RESPONSE_HEADER_LEN: usize = 8;

/// Default per-frame payload ceiling (64 MiB).
pub const DEFAULT_MAX_PAYLOAD: usize = 64 << 20;

/// RPC selector carried in a request frame's tag byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestTag {
    /// Store one tensor: `key u64 | layout | eb f32 | TaggedStream`.
    Store = 1,
    /// Fetch a stored tensor: `key u64 | mode u8` (0 raw f32, 1
    /// lossless-compressed `TaggedStream`). Non-destructive.
    Fetch = 2,
    /// Fetch a leading-dimension plane range: `key u64 | start u32 |
    /// end u32`. Non-destructive; frame-indexed codecs decode only the
    /// covering frames server-side.
    FetchPlanes = 3,
    /// Per-tenant stats snapshot (empty payload).
    Stats = 4,
    /// Remove one entry: `key u64`.
    Evict = 5,
    /// Liveness no-op (empty payload).
    Ping = 6,
}

impl RequestTag {
    /// Decode a tag byte; `None` for unassigned values (the server
    /// answers those with [`ErrorCode::UnknownTag`], not a hangup).
    pub fn from_byte(b: u8) -> Option<RequestTag> {
        match b {
            1 => Some(RequestTag::Store),
            2 => Some(RequestTag::Fetch),
            3 => Some(RequestTag::FetchPlanes),
            4 => Some(RequestTag::Stats),
            5 => Some(RequestTag::Evict),
            6 => Some(RequestTag::Ping),
            _ => None,
        }
    }

    /// The RPC's span / metric name (`serve.<rpc>`).
    pub fn span_name(&self) -> &'static str {
        match self {
            RequestTag::Store => "serve.store",
            RequestTag::Fetch => "serve.fetch",
            RequestTag::FetchPlanes => "serve.fetch_planes",
            RequestTag::Stats => "serve.stats",
            RequestTag::Evict => "serve.evict",
            RequestTag::Ping => "serve.ping",
        }
    }
}

/// Typed failure codes carried in a response frame's status byte.
/// Codes are wire format — never renumber a released code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Payload bytes do not decode as the tag's schema.
    Malformed = 1,
    /// Version byte the server does not speak.
    Version = 2,
    /// Unassigned request tag.
    UnknownTag = 3,
    /// Declared payload length exceeds the server's ceiling.
    TooLarge = 4,
    /// Admission control: in-flight queue depth at its ceiling; retry.
    Busy = 5,
    /// Admission control: the store would exceed a byte budget
    /// (tenant or global). Nothing was stored.
    OverBudget = 6,
    /// No entry under that key.
    Missing = 7,
    /// The entry was evicted under memory pressure; re-store it.
    Dropped = 8,
    /// The tensor stream failed to parse or decode.
    Codec = 9,
    /// Plane range out of bounds.
    BadRange = 10,
    /// The server-side handler failed unexpectedly (panic isolated to
    /// the one request).
    Internal = 11,
}

impl ErrorCode {
    /// Decode a status byte (`0` is success, not an error code).
    pub fn from_byte(b: u8) -> Option<ErrorCode> {
        match b {
            1 => Some(ErrorCode::Malformed),
            2 => Some(ErrorCode::Version),
            3 => Some(ErrorCode::UnknownTag),
            4 => Some(ErrorCode::TooLarge),
            5 => Some(ErrorCode::Busy),
            6 => Some(ErrorCode::OverBudget),
            7 => Some(ErrorCode::Missing),
            8 => Some(ErrorCode::Dropped),
            9 => Some(ErrorCode::Codec),
            10 => Some(ErrorCode::BadRange),
            11 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::Version => "version",
            ErrorCode::UnknownTag => "unknown-tag",
            ErrorCode::TooLarge => "too-large",
            ErrorCode::Busy => "busy",
            ErrorCode::OverBudget => "over-budget",
            ErrorCode::Missing => "missing",
            ErrorCode::Dropped => "dropped",
            ErrorCode::Codec => "codec",
            ErrorCode::BadRange => "bad-range",
            ErrorCode::Internal => "internal",
        };
        write!(f, "{name}")
    }
}

/// Typed framing failure — the total-parse guarantee: any byte
/// sequence yields one of these or a valid frame, never a panic and
/// never an allocation beyond the declared (validated) length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Underlying transport failure.
    Io(io::ErrorKind),
    /// The peer closed mid-frame (any proper prefix of a frame).
    Truncated,
    /// First two bytes are not the serve magic.
    BadMagic([u8; 2]),
    /// Version byte this parser does not speak.
    BadVersion(u8),
    /// Declared payload length exceeds the ceiling.
    TooLarge {
        /// Length the header declared.
        declared: usize,
        /// The enforced ceiling.
        max: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(k) => write!(f, "io error: {k:?}"),
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02X?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "declared payload {declared} exceeds limit {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

fn io_err(e: io::Error) -> FrameError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        FrameError::Truncated
    } else {
        FrameError::Io(e.kind())
    }
}

/// One parsed request frame. The tag byte is kept raw so dispatch can
/// answer unassigned values with a typed error instead of a hangup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestFrame {
    /// Raw tag byte (see [`RequestTag::from_byte`]).
    pub tag: u8,
    /// Tenant the request acts on.
    pub tenant: u32,
    /// RPC-specific body.
    pub payload: Vec<u8>,
}

/// One parsed response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseFrame {
    /// `0` = success, else an [`ErrorCode`] byte.
    pub status: u8,
    /// RPC-specific body (UTF-8 message for errors).
    pub payload: Vec<u8>,
}

/// Read one request frame. `Ok(None)` on a clean EOF at a frame
/// boundary (session over); [`FrameError::Truncated`] when the peer
/// dies mid-frame.
pub fn read_request(
    r: &mut impl Read,
    max_payload: usize,
) -> Result<Option<RequestFrame>, FrameError> {
    let mut header = [0u8; REQUEST_HEADER_LEN];
    // First byte separately: EOF here is a clean session end, EOF any
    // later is a truncation.
    match r.read(&mut header[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(io_err(e)),
    }
    r.read_exact(&mut header[1..]).map_err(io_err)?;
    if header[0..2] != MAGIC {
        return Err(FrameError::BadMagic([header[0], header[1]]));
    }
    if header[2] != VERSION {
        return Err(FrameError::BadVersion(header[2]));
    }
    let tag = header[3];
    let mut off = 4;
    let tenant = get_u32(&header, &mut off).expect("fixed header");
    let len = get_u32(&header, &mut off).expect("fixed header") as usize;
    if len > max_payload {
        return Err(FrameError::TooLarge {
            declared: len,
            max: max_payload,
        });
    }
    let payload = read_exact_limited(r, len, max_payload).map_err(io_err)?;
    Ok(Some(RequestFrame {
        tag,
        tenant,
        payload,
    }))
}

/// A payload length as the u32 the length field carries. Errors rather
/// than truncates: a silently wrapped length desyncs the stream — the
/// peer reads the wrong byte count and every later frame misparses.
fn payload_len_u32(len: usize) -> io::Result<u32> {
    u32::try_from(len).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("payload of {len} bytes exceeds the u32 frame length field"),
        )
    })
}

/// Write one request frame.
pub fn write_request(
    w: &mut impl Write,
    tag: RequestTag,
    tenant: u32,
    payload: &[u8],
) -> io::Result<()> {
    let len = payload_len_u32(payload.len())?;
    let mut buf = Vec::with_capacity(REQUEST_HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(tag as u8);
    put_u32(&mut buf, tenant);
    put_u32(&mut buf, len);
    buf.extend_from_slice(payload);
    w.write_all(&buf)
}

/// Read one response frame (same total-parse guarantees as
/// [`read_request`]; a response truncation is always an error — the
/// client asked a question).
pub fn read_response(r: &mut impl Read, max_payload: usize) -> Result<ResponseFrame, FrameError> {
    let mut header = [0u8; RESPONSE_HEADER_LEN];
    r.read_exact(&mut header).map_err(io_err)?;
    if header[0..2] != MAGIC {
        return Err(FrameError::BadMagic([header[0], header[1]]));
    }
    if header[2] != VERSION {
        return Err(FrameError::BadVersion(header[2]));
    }
    let status = header[3];
    let mut off = 4;
    let len = get_u32(&header, &mut off).expect("fixed header") as usize;
    if len > max_payload {
        return Err(FrameError::TooLarge {
            declared: len,
            max: max_payload,
        });
    }
    let payload = read_exact_limited(r, len, max_payload).map_err(io_err)?;
    Ok(ResponseFrame { status, payload })
}

/// Write one response frame (`status` 0 = success).
pub fn write_response(w: &mut impl Write, status: u8, payload: &[u8]) -> io::Result<()> {
    let len = payload_len_u32(payload.len())?;
    let mut buf = Vec::with_capacity(RESPONSE_HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(status);
    put_u32(&mut buf, len);
    buf.extend_from_slice(payload);
    w.write_all(&buf)
}

/// Encode a [`DataLayout`] (kind byte + three u32 dims, unused = 0).
pub fn put_layout(out: &mut Vec<u8>, layout: DataLayout) {
    let (kind, d) = match layout {
        DataLayout::D1(n) => (1u8, [n as u32, 0, 0]),
        DataLayout::D2(h, w) => (2, [h as u32, w as u32, 0]),
        DataLayout::D3(a, b, c) => (3, [a as u32, b as u32, c as u32]),
    };
    out.push(kind);
    for v in d {
        put_u32(out, v);
    }
}

/// Decode a [`DataLayout`]; `None` on underrun, an unassigned kind
/// byte, or dims whose product overflows (the untrusted-stream guard).
pub fn get_layout(buf: &[u8], off: &mut usize) -> Option<DataLayout> {
    let kind = get_u8(buf, off)?;
    let d0 = get_u32(buf, off)? as usize;
    let d1 = get_u32(buf, off)? as usize;
    let d2 = get_u32(buf, off)? as usize;
    let layout = match kind {
        1 => DataLayout::D1(d0),
        2 => DataLayout::D2(d0, d1),
        3 => DataLayout::D3(d0, d1, d2),
        _ => return None,
    };
    layout.checked_len()?;
    Some(layout)
}

/// Encode f32 values as a count-prefixed little-endian body (tensor
/// payloads are LE like the codec streams; frame *headers* are BE).
pub fn put_f32_body(out: &mut Vec<u8>, vals: &[f32]) {
    put_u32(out, vals.len() as u32);
    out.reserve(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decode a count-prefixed little-endian f32 body; `None` when the
/// count disagrees with the remaining bytes.
pub fn get_f32_body(buf: &[u8], off: &mut usize) -> Option<Vec<f32>> {
    let n = get_u32(buf, off)? as usize;
    let bytes = buf.get(*off..)?;
    if bytes.len() != n.checked_mul(4)? {
        return None;
    }
    *off += n * 4;
    Some(
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect(),
    )
}

/// Compose a store body (`key | layout | eb | stream bytes`) — used by
/// both the client and the hardening tests so each side speaks the
/// schema through one path.
pub fn store_payload(key: u64, layout: DataLayout, eb: f32, stream: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(25 + stream.len());
    put_u64(&mut out, key);
    put_layout(&mut out, layout);
    put_f32(&mut out, eb);
    out.extend_from_slice(stream);
    out
}

/// Parse a store body: key, layout, at-rest bound (0 = tenant
/// default), and the raw `TaggedStream` bytes.
pub fn parse_store_payload(payload: &[u8]) -> Option<(u64, DataLayout, f32, &[u8])> {
    let mut off = 0;
    let key = get_u64(payload, &mut off)?;
    let layout = get_layout(payload, &mut off)?;
    let eb = get_f32(payload, &mut off)?;
    Some((key, layout, eb, payload.get(off..)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_request_bytes() -> Vec<u8> {
        let mut out = Vec::new();
        write_request(&mut out, RequestTag::Store, 7, &[1, 2, 3, 4, 5]).unwrap();
        out
    }

    #[test]
    fn payload_len_guard_rejects_past_u32() {
        assert_eq!(payload_len_u32(0).unwrap(), 0);
        assert_eq!(payload_len_u32(u32::MAX as usize).unwrap(), u32::MAX);
        // One past the field's range must error, not wrap to 0 and
        // desync the stream.
        let err = payload_len_u32(u32::MAX as usize + 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn request_roundtrip() {
        let bytes = valid_request_bytes();
        let mut r = &bytes[..];
        let f = read_request(&mut r, DEFAULT_MAX_PAYLOAD).unwrap().unwrap();
        assert_eq!(f.tag, RequestTag::Store as u8);
        assert_eq!(f.tenant, 7);
        assert_eq!(f.payload, vec![1, 2, 3, 4, 5]);
        // Clean EOF at the frame boundary.
        assert_eq!(read_request(&mut r, DEFAULT_MAX_PAYLOAD).unwrap(), None);
    }

    #[test]
    fn response_roundtrip() {
        let mut out = Vec::new();
        write_response(&mut out, 0, b"ok-body").unwrap();
        let f = read_response(&mut &out[..], DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(f.status, 0);
        assert_eq!(f.payload, b"ok-body");
    }

    #[test]
    fn every_prefix_of_a_valid_request_is_truncated_or_eof() {
        let bytes = valid_request_bytes();
        for cut in 0..bytes.len() {
            let mut r = &bytes[..cut];
            match read_request(&mut r, DEFAULT_MAX_PAYLOAD) {
                Ok(None) => assert_eq!(cut, 0, "only the empty prefix is a clean EOF"),
                Err(FrameError::Truncated) => assert!(cut > 0),
                other => panic!("prefix {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_magic_version_tag_yield_typed_errors() {
        let bytes = valid_request_bytes();
        for (pos, expect_ok_parse) in [(0usize, false), (1, false), (2, false), (3, true)] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0xFF;
            let got = read_request(&mut &bad[..], DEFAULT_MAX_PAYLOAD);
            match (pos, got) {
                (0 | 1, Err(FrameError::BadMagic(_))) => {}
                (2, Err(FrameError::BadVersion(_))) => {}
                // A corrupt tag still frames correctly — dispatch
                // rejects it with ErrorCode::UnknownTag.
                (3, Ok(Some(f))) => {
                    assert!(expect_ok_parse);
                    assert_eq!(RequestTag::from_byte(f.tag), None);
                }
                (p, got) => panic!("byte {p}: unexpected {got:?}"),
            }
        }
    }

    #[test]
    fn over_length_declared_payload_is_rejected_before_allocation() {
        // Header declares u32::MAX payload bytes; parser must reject on
        // the declared length alone (no allocation, no read attempt).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(RequestTag::Ping as u8);
        put_u32(&mut bytes, 0); // tenant
        put_u32(&mut bytes, u32::MAX); // declared length
        match read_request(&mut &bytes[..], DEFAULT_MAX_PAYLOAD) {
            Err(FrameError::TooLarge { declared, max }) => {
                assert_eq!(declared, u32::MAX as usize);
                assert_eq!(max, DEFAULT_MAX_PAYLOAD);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Same guard on the response path.
        let mut resp = Vec::new();
        resp.extend_from_slice(&MAGIC);
        resp.push(VERSION);
        resp.push(0);
        put_u32(&mut resp, u32::MAX);
        assert!(matches!(
            read_response(&mut &resp[..], DEFAULT_MAX_PAYLOAD),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn layout_and_f32_bodies_roundtrip_and_reject_junk() {
        for layout in [
            DataLayout::D1(5000),
            DataLayout::D2(32, 48),
            DataLayout::D3(4, 8, 8),
        ] {
            let mut buf = Vec::new();
            put_layout(&mut buf, layout);
            let mut off = 0;
            assert_eq!(get_layout(&buf, &mut off), Some(layout));
            assert_eq!(off, buf.len());
        }
        // Unassigned kind byte and overflowing dims are both rejected.
        let mut bad_kind = vec![9u8];
        bad_kind.extend_from_slice(&[0; 12]);
        assert_eq!(get_layout(&bad_kind, &mut 0), None);
        let mut overflow = vec![3u8];
        for _ in 0..3 {
            put_u32(&mut overflow, u32::MAX);
        }
        assert_eq!(get_layout(&overflow, &mut 0), None);

        let vals = [1.0f32, -2.5, 0.0, f32::MAX];
        let mut buf = Vec::new();
        put_f32_body(&mut buf, &vals);
        let mut off = 0;
        assert_eq!(get_f32_body(&buf, &mut off).as_deref(), Some(&vals[..]));
        // Count disagreeing with the body length is rejected.
        buf.pop();
        assert_eq!(get_f32_body(&buf, &mut 0), None);
    }

    #[test]
    fn store_payload_roundtrip() {
        let body = store_payload(42, DataLayout::D2(8, 16), 1e-3, &[0xEB, 0xC0, 1, 9]);
        let (key, layout, eb, stream) = parse_store_payload(&body).unwrap();
        assert_eq!(key, 42);
        assert_eq!(layout, DataLayout::D2(8, 16));
        assert_eq!(eb, 1e-3);
        assert_eq!(stream, &[0xEB, 0xC0, 1, 9]);
        // Any truncation of the fixed part is a clean None.
        for cut in 0..21 {
            assert_eq!(parse_store_payload(&body[..cut]), None, "cut {cut}");
        }
    }

    #[test]
    fn tag_and_error_code_bytes_are_stable() {
        for (tag, b) in [
            (RequestTag::Store, 1u8),
            (RequestTag::Fetch, 2),
            (RequestTag::FetchPlanes, 3),
            (RequestTag::Stats, 4),
            (RequestTag::Evict, 5),
            (RequestTag::Ping, 6),
        ] {
            assert_eq!(tag as u8, b);
            assert_eq!(RequestTag::from_byte(b), Some(tag));
        }
        assert_eq!(RequestTag::from_byte(0), None);
        for b in 1u8..=11 {
            assert_eq!(ErrorCode::from_byte(b).unwrap() as u8, b);
        }
        assert_eq!(ErrorCode::from_byte(0), None);
        assert_eq!(ErrorCode::from_byte(200), None);
    }
}
