//! Per-tenant state: one [`BudgetedArena`] under the tenant's hard
//! byte budget, plus the layout side-table and RPC counters.
//!
//! Every tensor a tenant stores lives in its arena under the daemon's
//! demotion codec — hot while the budget allows, compressed warm under
//! pressure, cold (host-migrated or dropped, per [`ColdPolicy`]) past
//! that. The arena's own invariant (`resident ≤ budget` between any
//! two calls, transients included) is what makes the daemon's
//! per-tenant guarantee: no tenant can push another over its budget,
//! because budgets are enforced per-arena, not cooperatively.

use crate::frame::ErrorCode;
use crate::ServeError;
use ebtrain_codec::{BoundSpec, CodecRegistry, TaggedStream};
use ebtrain_membudget::{BudgetConfig, BudgetedArena, MembudgetError, Tier};
use ebtrain_obs::netutil::{get_u64, put_u64};
use ebtrain_sz::DataLayout;
use std::collections::HashMap;

/// One tenant's stats snapshot — the `stats` RPC body (eight u64s,
/// big-endian, in field order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Device-resident bytes right now (hot + warm tiers).
    pub resident_bytes: u64,
    /// The tenant's hard device-byte budget.
    pub budget_bytes: u64,
    /// High-water mark of `resident_bytes` — the budget proof:
    /// `peak ≤ budget` after any call sequence.
    pub peak_resident_bytes: u64,
    /// Live entries (all tiers).
    pub entries: u64,
    /// Sum of raw (uncompressed) sizes of live entries.
    pub raw_bytes: u64,
    /// Stores accepted.
    pub stores: u64,
    /// Fetches served (full + plane-range).
    pub fetches: u64,
    /// Requests rejected over budget.
    pub rejected: u64,
}

impl TenantStats {
    /// Serialize as the stats RPC body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        for v in [
            self.resident_bytes,
            self.budget_bytes,
            self.peak_resident_bytes,
            self.entries,
            self.raw_bytes,
            self.stores,
            self.fetches,
            self.rejected,
        ] {
            put_u64(&mut out, v);
        }
        out
    }

    /// Parse a stats RPC body; `None` on a malformed length.
    pub fn decode(buf: &[u8]) -> Option<TenantStats> {
        let mut off = 0;
        let s = TenantStats {
            resident_bytes: get_u64(buf, &mut off)?,
            budget_bytes: get_u64(buf, &mut off)?,
            peak_resident_bytes: get_u64(buf, &mut off)?,
            entries: get_u64(buf, &mut off)?,
            raw_bytes: get_u64(buf, &mut off)?,
            stores: get_u64(buf, &mut off)?,
            fetches: get_u64(buf, &mut off)?,
            rejected: get_u64(buf, &mut off)?,
        };
        (off == buf.len()).then_some(s)
    }
}

fn err(code: ErrorCode, message: impl Into<String>) -> ServeError {
    ServeError {
        code,
        message: message.into(),
    }
}

fn map_membudget(e: MembudgetError) -> ServeError {
    match e {
        MembudgetError::Missing => err(ErrorCode::Missing, "no entry under key"),
        MembudgetError::Dropped => err(
            ErrorCode::Dropped,
            "entry was evicted under memory pressure; re-store it",
        ),
        MembudgetError::Codec(e) => err(ErrorCode::Codec, format!("stored stream: {e}")),
    }
}

pub(crate) struct Tenant {
    arena: BudgetedArena<u64>,
    /// Key → (layout, raw bytes) of live entries; the arena holds the
    /// payloads, this table remembers how to slice them.
    layouts: HashMap<u64, (DataLayout, usize)>,
    raw_total: usize,
    stores: u64,
    fetches: u64,
    rejected: u64,
    /// This tenant's registry gauge (`serve.tenant.resident#t<id>`),
    /// kept equal to the arena's resident bytes after every op.
    gauge_key: String,
}

impl Tenant {
    pub fn new(id: u32, mut cfg: BudgetConfig) -> Tenant {
        // Serving has no backward schedule, so prefetch never has
        // anything to look ahead to; keep the arena's pipeline off.
        cfg.prefetch_depth = 0;
        let gauge_key = format!("serve.tenant.resident#t{id}");
        ebtrain_obs::gauge_set(&gauge_key, 0);
        Tenant {
            arena: BudgetedArena::new(cfg, Box::new(ebtrain_membudget::Lru)),
            layouts: HashMap::new(),
            raw_total: 0,
            stores: 0,
            fetches: 0,
            rejected: 0,
            gauge_key,
        }
    }

    /// Device-resident bytes (the global admission mirror reads this
    /// after every op, under the tenant lock).
    pub fn resident(&self) -> usize {
        self.arena.resident_bytes()
    }

    /// Sum of raw sizes of live entries (the all-tier footprint the
    /// global `max_raw_bytes` ceiling meters).
    pub fn raw_total(&self) -> usize {
        self.raw_total
    }

    /// Raw size of the entry under `key` (0 when absent) — what a
    /// replacement store frees, for replacement-aware admission.
    pub fn raw_of(&self, key: u64) -> usize {
        self.layouts.get(&key).map(|&(_, r)| r).unwrap_or(0)
    }

    /// Count one admission rejection against this tenant.
    pub fn count_rejected(&mut self) {
        self.rejected += 1;
    }

    fn publish_gauge(&self) {
        ebtrain_obs::gauge_set(&self.gauge_key, self.arena.resident_bytes() as i64);
    }

    /// A live-key-free scratch key near `key` — the staging slot for
    /// atomic replacement. Never visible outside one `store` call (all
    /// calls run under the tenant lock).
    fn scratch_key(&self, key: u64) -> u64 {
        let mut k = key ^ 0x9E37_79B9_7F4A_7C15;
        while k == key || self.layouts.contains_key(&k) {
            k = k.wrapping_add(0x9E37_79B9_7F4A_7C15);
        }
        k
    }

    /// Store one tensor: parse the wire stream, validate its declared
    /// element count against the request layout **before** decoding
    /// (a hostile header must not size any allocation), then insert
    /// into the arena (which lands it in whatever tier the budget
    /// allows). `eb > 0` overrides the at-rest demotion bound.
    ///
    /// Replacing an existing key is staged: the new payload goes in
    /// under a scratch key and is renamed over the old one only once it
    /// is known to fit, so a rejected replacement leaves the previous
    /// value live (budget pressure from the attempt may still demote it
    /// — or, under `DropForRecompute`, drop it — exactly as any other
    /// pressure event may).
    pub fn store(
        &mut self,
        registry: &CodecRegistry,
        key: u64,
        layout: DataLayout,
        eb: f32,
        stream_bytes: &[u8],
    ) -> Result<Tier, ServeError> {
        let stream = TaggedStream::from_bytes(stream_bytes.to_vec())
            .map_err(|e| err(ErrorCode::Codec, format!("tensor stream: {e}")))?;
        match registry.declared_elems(&stream) {
            Ok(Some(n)) if n != layout.len() => {
                return Err(err(
                    ErrorCode::Malformed,
                    format!(
                        "stream header declares {n} elems, layout declares {}",
                        layout.len()
                    ),
                ));
            }
            Ok(_) => {}
            Err(e) => return Err(err(ErrorCode::Codec, format!("tensor stream: {e}"))),
        }
        let data = registry
            .decompress(&stream)
            .map_err(|e| err(ErrorCode::Codec, format!("tensor stream: {e}")))?;
        if data.len() != layout.len() {
            return Err(err(
                ErrorCode::Malformed,
                format!(
                    "stream decodes to {} elems, layout declares {}",
                    data.len(),
                    layout.len()
                ),
            ));
        }
        let raw = data.len() * 4;
        let replacing = self.layouts.contains_key(&key);
        let slot = if replacing {
            self.scratch_key(key)
        } else {
            key
        };
        let bound = (eb > 0.0).then_some(BoundSpec::Abs(eb));
        let tier = self.arena.insert_f32_with(slot, data, layout, bound, None);
        if tier == Tier::Dropped {
            // DropForRecompute cold policy and nothing fit: reject the
            // store outright rather than holding a zero-byte tombstone —
            // the no-residual guarantee of an over-budget rejection. A
            // replacement rejected here never removed the entry under
            // `key`: its accounting survives, though the attempt's
            // insert pressure may have demoted (or dropped) its payload
            // like any other pressure event.
            self.arena.remove(slot);
            self.rejected += 1;
            self.publish_gauge();
            return Err(err(
                ErrorCode::OverBudget,
                "payload does not fit the tenant budget even compressed",
            ));
        }
        if replacing {
            let (_, old_raw) = self.layouts.remove(&key).expect("checked replacing");
            self.raw_total -= old_raw;
            self.arena.rename(slot, key); // removes the old entry itself
        }
        self.layouts.insert(key, (layout, raw));
        self.raw_total += raw;
        self.stores += 1;
        self.publish_gauge();
        Ok(tier)
    }

    /// Fetch a whole tensor without removing it (a full-range plane
    /// fetch under the hood, so warm entries decode without being
    /// evicted from the arena).
    pub fn fetch(&mut self, key: u64) -> Result<(Vec<f32>, DataLayout), ServeError> {
        let (layout, _) = *self
            .layouts
            .get(&key)
            .ok_or_else(|| err(ErrorCode::Missing, "no entry under key"))?;
        let vals = self
            .arena
            .fetch_planes(key, 0..layout.plane_count())
            .map_err(map_membudget)?;
        self.fetches += 1;
        self.publish_gauge();
        Ok((vals, layout))
    }

    /// Fetch a leading-dimension plane range (frame-indexed codecs
    /// decode only the covering frames server-side).
    pub fn fetch_planes(
        &mut self,
        key: u64,
        start: usize,
        end: usize,
    ) -> Result<Vec<f32>, ServeError> {
        let (layout, _) = *self
            .layouts
            .get(&key)
            .ok_or_else(|| err(ErrorCode::Missing, "no entry under key"))?;
        if start > end || end > layout.plane_count() {
            return Err(err(
                ErrorCode::BadRange,
                format!(
                    "plane range {start}..{end} outside 0..{}",
                    layout.plane_count()
                ),
            ));
        }
        let vals = self
            .arena
            .fetch_planes(key, start..end)
            .map_err(map_membudget)?;
        self.fetches += 1;
        self.publish_gauge();
        Ok(vals)
    }

    /// Remove one entry (any tier).
    pub fn evict(&mut self, key: u64) -> Result<(), ServeError> {
        let (_, raw) = self
            .layouts
            .remove(&key)
            .ok_or_else(|| err(ErrorCode::Missing, "no entry under key"))?;
        self.raw_total -= raw;
        self.arena.remove(key);
        self.publish_gauge();
        Ok(())
    }

    /// Shrink device residency toward `target` bytes (the cross-tenant
    /// eviction pass); returns bytes freed.
    pub fn reclaim_to(&mut self, target: usize) -> usize {
        let freed = self.arena.reclaim_to(target);
        self.publish_gauge();
        freed
    }

    /// Stats snapshot.
    pub fn stats(&self) -> TenantStats {
        TenantStats {
            resident_bytes: self.arena.resident_bytes() as u64,
            budget_bytes: self.arena.budget_bytes() as u64,
            peak_resident_bytes: self.arena.peak_resident_bytes() as u64,
            entries: self.arena.len() as u64,
            raw_bytes: self.raw_total as u64,
            stores: self.stores,
            fetches: self.fetches,
            rejected: self.rejected,
        }
    }
}

impl Drop for Tenant {
    fn drop(&mut self) {
        // Retire the registry gauge so snapshots only show live tenants.
        ebtrain_obs::gauge_remove(&self.gauge_key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_encode_decode_roundtrip() {
        let s = TenantStats {
            resident_bytes: 1,
            budget_bytes: 2,
            peak_resident_bytes: 3,
            entries: 4,
            raw_bytes: 5,
            stores: 6,
            fetches: 7,
            rejected: 8,
        };
        let enc = s.encode();
        assert_eq!(enc.len(), 64);
        assert_eq!(TenantStats::decode(&enc), Some(s));
        assert_eq!(TenantStats::decode(&enc[..63]), None);
        let mut long = enc.clone();
        long.push(0);
        assert_eq!(TenantStats::decode(&long), None);
    }
}
