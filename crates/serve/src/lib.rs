//! # ebtrain-serve — the multi-tenant compressed-tensor daemon
//!
//! A dependency-free `std::net` TCP daemon that stores and serves
//! error-bounded compressed tensors for many tenants at once, each
//! under a **hard byte budget**. It composes the rest of the
//! workspace instead of re-implementing it:
//!
//! * tensors travel as self-describing [`TaggedStream`]s and are
//!   decoded through the [`CodecRegistry`](ebtrain_codec::CodecRegistry),
//!   so any registered backend works on the wire;
//! * each tenant's state is a
//!   [`BudgetedArena`](ebtrain_membudget::BudgetedArena), whose
//!   `resident ≤ budget` invariant (transients included) **is** the
//!   per-tenant guarantee — tenants cannot push each other over
//!   budget;
//! * RPCs execute on an [`ebtrain_pool::WorkerPool`] (inline-claim
//!   join, so saturation can never deadlock a session thread);
//! * every RPC runs under an `ebtrain-obs` span (`serve.store`,
//!   `serve.fetch`, …), feeding the workspace-wide latency histograms
//!   and the `/metrics` endpoint for free.
//!
//! Admission control answers with **typed errors, never a hang**:
//! queue depth past its ceiling is [`ErrorCode::Busy`]; a store no
//! budget can hold — after the tiered cross-tenant eviction pass — is
//! [`ErrorCode::OverBudget`], with nothing stored and no residual
//! accounting.
//!
//! Wire protocol: see [`frame`] and DESIGN.md §10. Scaling numbers:
//! the `fig14_serve_scaling` bench in `ebtrain-bench`.
//!
//! ```
//! use ebtrain_serve::{ServeClient, ServeConfig, ServeDaemon};
//! use ebtrain_sz::DataLayout;
//!
//! let daemon = ServeDaemon::spawn(ServeConfig::default()).unwrap();
//! let mut client = ServeClient::connect(daemon.addr()).unwrap();
//! let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
//! client.store_f32(7, 1, &data, DataLayout::D1(4096), 1e-3).unwrap();
//! let (got, layout) = client.fetch(7, 1).unwrap();
//! assert_eq!(layout, DataLayout::D1(4096));
//! assert!(got.iter().zip(&data).all(|(a, b)| (a - b).abs() <= 1e-3 + 1e-6));
//! daemon.shutdown();
//! ```

pub mod client;
pub mod daemon;
pub mod frame;
mod tenant;

pub use client::{ClientError, ClientResult, ServeClient};
pub use daemon::{ServeConfig, ServeDaemon};
pub use frame::{ErrorCode, FrameError, RequestTag};
pub use tenant::TenantStats;

// The types a daemon embedder needs from downstairs, re-exported so
// callers don't take direct deps for the common path.
pub use ebtrain_codec::{BoundSpec, TaggedStream};
pub use ebtrain_membudget::{ColdPolicy, Tier};
pub use ebtrain_sz::DataLayout;

/// A typed server-side RPC failure: the wire [`ErrorCode`] plus a
/// human-readable message (the error response's payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// Wire error code.
    pub code: ErrorCode,
    /// UTF-8 message carried in the response payload.
    pub message: String,
}

impl ServeError {
    /// Build a typed error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ServeError {
        ServeError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for ServeError {}

/// Wire byte for the tier a store landed in (the store response body).
pub fn tier_to_byte(tier: Tier) -> u8 {
    match tier {
        Tier::Hot => 0,
        Tier::Warm => 1,
        Tier::Cold => 2,
        Tier::Dropped => 3,
    }
}

/// Decode a tier byte; `None` for unassigned values.
pub fn tier_from_byte(b: u8) -> Option<Tier> {
    match b {
        0 => Some(Tier::Hot),
        1 => Some(Tier::Warm),
        2 => Some(Tier::Cold),
        3 => Some(Tier::Dropped),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_bytes_roundtrip() {
        for t in [Tier::Hot, Tier::Warm, Tier::Cold, Tier::Dropped] {
            assert_eq!(tier_from_byte(tier_to_byte(t)), Some(t));
        }
        assert_eq!(tier_from_byte(9), None);
    }
}
