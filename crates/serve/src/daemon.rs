//! The daemon: accept loop, session framing, admission control, RPC
//! dispatch on the worker pool, and the cross-tenant eviction pass.
//!
//! Concurrency model: each connection gets an OS thread (blocking
//! frame I/O via [`ebtrain_obs::netutil::TcpServer`]), but every parsed RPC
//! *executes* as an `ebtrain-pool` task that the session thread joins.
//! The pool's inline-claim join means a saturated pool can never
//! starve a session — the joiner runs its own task — so sessions
//! multiplex compute on a bounded worker set while keeping per-session
//! request ordering.
//!
//! Admission control happens in two places, both answering with a
//! typed error instead of a hang:
//!
//! * **queue depth** — an in-flight counter checked before a request
//!   is submitted; past `max_inflight` the session answers
//!   [`ErrorCode::Busy`] immediately.
//! * **byte budgets** — per-tenant budgets are the arenas' own hard
//!   invariant; on top of that, a global resident ceiling triggers the
//!   tiered cross-tenant eviction pass (`global_reclaim`) and, if
//!   reclaim cannot make room, the store is rejected
//!   [`ErrorCode::OverBudget`] with nothing stored (no residual bytes,
//!   no counted entry, gauges unchanged).

use crate::frame::{
    self, ErrorCode, RequestFrame, RequestTag, DEFAULT_MAX_PAYLOAD, REQUEST_HEADER_LEN,
    RESPONSE_HEADER_LEN,
};
use crate::tenant::{Tenant, TenantStats};
use crate::{tier_to_byte, ServeError};
use ebtrain_codec::{BoundSpec, Codec, CodecRegistry, LosslessCodec};
use ebtrain_membudget::{BudgetConfig, ColdPolicy};
use ebtrain_obs::netutil::{get_u32, get_u64, get_u8, TcpServer};
use ebtrain_obs::{counter_add, gauge_add, gauge_remove, gauge_set};
use ebtrain_pool::WorkerPool;
use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Daemon configuration. Env-var knobs: see [`ServeConfig::from_env`].
#[derive(Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`, port 0 for ephemeral).
    pub addr: String,
    /// RPC worker-pool threads (0 = available parallelism, capped at 8).
    pub workers: usize,
    /// Hard device-byte budget per tenant arena.
    pub tenant_budget_bytes: usize,
    /// Global device-resident ceiling across all tenants. A store that
    /// would cross it triggers the cross-tenant eviction pass; if
    /// reclaim cannot make room the store is rejected `OverBudget`.
    pub max_resident_bytes: usize,
    /// Global all-tier ceiling on the sum of raw (uncompressed) sizes
    /// of live entries — bounds host memory under `HostMigrate`.
    pub max_raw_bytes: usize,
    /// In-flight request ceiling; past it sessions answer `Busy`.
    pub max_inflight: usize,
    /// Per-frame payload ceiling (bytes), enforced before allocation.
    pub max_payload: usize,
    /// Cold-tier behaviour for tenant arenas.
    pub cold: ColdPolicy,
    /// Default at-rest demotion bound (a store's `eb > 0` overrides).
    pub bound: BoundSpec,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            tenant_budget_bytes: 8 << 20,
            max_resident_bytes: 32 << 20,
            max_raw_bytes: 256 << 20,
            max_inflight: 256,
            max_payload: DEFAULT_MAX_PAYLOAD,
            cold: ColdPolicy::HostMigrate,
            bound: BoundSpec::Abs(1e-3),
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

impl ServeConfig {
    /// Defaults overridden by the environment:
    ///
    /// | var | meaning |
    /// |---|---|
    /// | `EBTRAIN_SERVE_ADDR` | bind address |
    /// | `EBTRAIN_SERVE_TENANT_MIB` | per-tenant budget (MiB) |
    /// | `EBTRAIN_SERVE_GLOBAL_MIB` | global resident ceiling (MiB); raw ceiling = 8× |
    /// | `EBTRAIN_SERVE_MAX_INFLIGHT` | in-flight request ceiling |
    pub fn from_env() -> ServeConfig {
        let mut cfg = ServeConfig::default();
        if let Ok(a) = std::env::var("EBTRAIN_SERVE_ADDR") {
            if !a.is_empty() {
                cfg.addr = a;
            }
        }
        if let Some(m) = env_usize("EBTRAIN_SERVE_TENANT_MIB") {
            cfg.tenant_budget_bytes = m << 20;
        }
        if let Some(m) = env_usize("EBTRAIN_SERVE_GLOBAL_MIB") {
            cfg.max_resident_bytes = m << 20;
            cfg.max_raw_bytes = (m << 20).saturating_mul(8);
        }
        if let Some(n) = env_usize("EBTRAIN_SERVE_MAX_INFLIGHT") {
            cfg.max_inflight = n;
        }
        cfg
    }
}

/// One tenant plus lock-free mirrors of its byte totals, so admission
/// and the eviction pass can sum/sort residency without taking every
/// tenant lock.
struct TenantSlot {
    tenant: Mutex<Tenant>,
    resident: AtomicUsize,
    raw: AtomicUsize,
}

struct Shared {
    cfg: ServeConfig,
    registry: CodecRegistry,
    lossless: LosslessCodec,
    tenants: Mutex<HashMap<u32, Arc<TenantSlot>>>,
    /// Σ slot.resident — maintained under each tenant's lock, read
    /// lock-free by admission.
    resident_total: AtomicUsize,
    /// Σ slot.raw.
    raw_total: AtomicUsize,
    /// Worst-case device bytes of stores admitted but not yet mirrored
    /// into `resident_total`. Admission reserves here with a CAS before
    /// letting a store proceed, so concurrent stores on different
    /// tenants cannot each pass the ceiling check and overshoot it
    /// together.
    resident_pending: AtomicUsize,
    /// Same, for the raw ceiling.
    raw_pending: AtomicUsize,
    inflight: AtomicUsize,
    pool: WorkerPool,
}

/// CAS-reserve `amount` against `ceiling`, counting both the settled
/// total and other requests' outstanding reservations. Returns whether
/// the reservation was taken; the caller must release it (via
/// [`Reservation`]) once the settled total reflects the store.
fn try_reserve(total: &AtomicUsize, pending: &AtomicUsize, amount: usize, ceiling: usize) -> bool {
    let mut cur = pending.load(Ordering::SeqCst);
    loop {
        let used = total.load(Ordering::SeqCst).saturating_add(cur);
        if used.saturating_add(amount) > ceiling {
            return false;
        }
        match pending.compare_exchange(cur, cur + amount, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
}

/// A held admission reservation; releases on drop (panic-safe — a
/// leaked reservation would permanently shrink the ceiling).
struct Reservation<'a> {
    pending: &'a AtomicUsize,
    amount: usize,
}

impl Drop for Reservation<'_> {
    fn drop(&mut self) {
        self.pending.fetch_sub(self.amount, Ordering::SeqCst);
    }
}

impl Drop for Shared {
    fn drop(&mut self) {
        gauge_remove("serve.inflight");
        gauge_remove("serve.tenants");
    }
}

/// The running daemon. Dropping (or [`shutdown`](ServeDaemon::shutdown))
/// stops the accept loop; live sessions wind down when their clients
/// disconnect, and per-tenant gauges retire with the last session's
/// reference to the shared state.
pub struct ServeDaemon {
    server: TcpServer,
    shared: Arc<Shared>,
}

impl ServeDaemon {
    /// Bind and start serving.
    pub fn spawn(cfg: ServeConfig) -> io::Result<ServeDaemon> {
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8)
        } else {
            cfg.workers
        };
        let addr = cfg.addr.clone();
        let shared = Arc::new(Shared {
            cfg,
            registry: CodecRegistry::standard(),
            lossless: LosslessCodec,
            tenants: Mutex::new(HashMap::new()),
            resident_total: AtomicUsize::new(0),
            raw_total: AtomicUsize::new(0),
            resident_pending: AtomicUsize::new(0),
            raw_pending: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            pool: WorkerPool::new(workers),
        });
        gauge_set("serve.inflight", 0);
        gauge_set("serve.tenants", 0);
        let session_shared = Arc::clone(&shared);
        let server = TcpServer::spawn(
            "ebtrain-serve",
            &addr,
            true,
            Arc::new(move |stream| session(&session_shared, stream)),
        )?;
        Ok(ServeDaemon { server, shared })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Stop accepting connections.
    pub fn shutdown(self) {
        self.server.shutdown();
    }

    /// Device-resident bytes across all tenants (test/bench probe).
    pub fn resident_total(&self) -> usize {
        self.shared.resident_total.load(Ordering::SeqCst)
    }

    /// Sum of raw sizes of live entries across all tenants.
    pub fn raw_total(&self) -> usize {
        self.shared.raw_total.load(Ordering::SeqCst)
    }

    /// Live tenant count.
    pub fn tenant_count(&self) -> usize {
        self.shared.tenants.lock().expect("tenants poisoned").len()
    }

    /// In-process stats snapshot for one tenant (None if it never
    /// issued a request).
    pub fn tenant_stats(&self, tenant: u32) -> Option<TenantStats> {
        let slot = {
            let map = self.shared.tenants.lock().expect("tenants poisoned");
            map.get(&tenant).cloned()?
        };
        let t = slot.tenant.lock().expect("tenant poisoned");
        Some(t.stats())
    }
}

fn lock_tenant(slot: &TenantSlot) -> MutexGuard<'_, Tenant> {
    slot.tenant.lock().expect("tenant poisoned")
}

/// Re-mirror one tenant's byte totals into the slot atomics and the
/// global sums. Called under the tenant's lock after every mutation.
fn sync_slot(shared: &Shared, slot: &TenantSlot, t: &Tenant) {
    update_mirror(&slot.resident, &shared.resident_total, t.resident());
    update_mirror(&slot.raw, &shared.raw_total, t.raw_total());
}

fn update_mirror(cell: &AtomicUsize, total: &AtomicUsize, now: usize) {
    let old = cell.swap(now, Ordering::SeqCst);
    if now >= old {
        total.fetch_add(now - old, Ordering::SeqCst);
    } else {
        total.fetch_sub(old - now, Ordering::SeqCst);
    }
}

/// Look up a tenant slot, creating it (with the daemon's budget
/// template) when `create` is set.
fn tenant_slot(shared: &Shared, tenant: u32, create: bool) -> Result<Arc<TenantSlot>, ServeError> {
    let mut map = shared.tenants.lock().expect("tenants poisoned");
    if let Some(s) = map.get(&tenant) {
        return Ok(Arc::clone(s));
    }
    if !create {
        return Err(ServeError::new(
            ErrorCode::Missing,
            format!("tenant {tenant} holds nothing"),
        ));
    }
    let mut bc = BudgetConfig::with_budget(shared.cfg.tenant_budget_bytes);
    bc.cold = shared.cfg.cold;
    bc.bound = shared.cfg.bound;
    let slot = Arc::new(TenantSlot {
        tenant: Mutex::new(Tenant::new(tenant, bc)),
        resident: AtomicUsize::new(0),
        raw: AtomicUsize::new(0),
    });
    map.insert(tenant, Arc::clone(&slot));
    gauge_set("serve.tenants", map.len() as i64);
    Ok(slot)
}

/// One connection's lifetime: read frames, admit, dispatch on the
/// pool, answer. A framing error answers with a typed error frame
/// where the stream is still coherent enough to carry one, then
/// closes — after a desync there is no way to find the next frame
/// boundary.
fn session(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        let req = match frame::read_request(&mut reader, shared.cfg.max_payload) {
            Ok(None) => return,
            Ok(Some(req)) => req,
            Err(e) => {
                counter_add("serve.frame_errors", 1);
                let code = match &e {
                    frame::FrameError::BadMagic(_) => Some(ErrorCode::Malformed),
                    frame::FrameError::BadVersion(_) => Some(ErrorCode::Version),
                    frame::FrameError::TooLarge { .. } => Some(ErrorCode::TooLarge),
                    frame::FrameError::Truncated | frame::FrameError::Io(_) => None,
                };
                if let Some(code) = code {
                    let _ =
                        frame::write_response(&mut writer, code as u8, e.to_string().as_bytes());
                    let _ = writer.flush();
                }
                return;
            }
        };
        counter_add("serve.requests", 1);
        counter_add(
            "serve.bytes_in",
            (REQUEST_HEADER_LEN + req.payload.len()) as u64,
        );
        // Queue-depth admission: count ourselves in, answer Busy past
        // the ceiling. The gauge's high-water mark is the observable
        // queue-depth peak.
        let depth = shared.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        gauge_add("serve.inflight", 1);
        let (status, payload) = if depth > shared.cfg.max_inflight {
            counter_add("serve.rejected.busy", 1);
            (
                ErrorCode::Busy as u8,
                format!(
                    "{depth} requests in flight (ceiling {})",
                    shared.cfg.max_inflight
                )
                .into_bytes(),
            )
        } else {
            let task_shared = Arc::clone(shared);
            let handle = shared.pool.submit(move || dispatch(&task_shared, req));
            match handle.join_result() {
                Ok(resp) => resp,
                Err(_) => {
                    // Panic stays isolated to this one request.
                    counter_add("serve.panics", 1);
                    (
                        ErrorCode::Internal as u8,
                        b"request handler panicked".to_vec(),
                    )
                }
            }
        };
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        gauge_add("serve.inflight", -1);
        counter_add(
            "serve.bytes_out",
            (RESPONSE_HEADER_LEN + payload.len()) as u64,
        );
        let sent =
            frame::write_response(&mut writer, status, &payload).and_then(|()| writer.flush());
        if sent.is_err() {
            return;
        }
    }
}

/// Execute one admitted request (runs on a pool worker).
fn dispatch(shared: &Arc<Shared>, req: RequestFrame) -> (u8, Vec<u8>) {
    let Some(tag) = RequestTag::from_byte(req.tag) else {
        return (
            ErrorCode::UnknownTag as u8,
            format!("unassigned request tag {}", req.tag).into_bytes(),
        );
    };
    let _span = ebtrain_obs::span(tag.span_name());
    let out = match tag {
        RequestTag::Ping => Ok(Vec::new()),
        RequestTag::Store => rpc_store(shared, req.tenant, &req.payload),
        RequestTag::Fetch => rpc_fetch(shared, req.tenant, &req.payload),
        RequestTag::FetchPlanes => rpc_fetch_planes(shared, req.tenant, &req.payload),
        RequestTag::Stats => rpc_stats(shared, req.tenant, &req.payload),
        RequestTag::Evict => rpc_evict(shared, req.tenant, &req.payload),
    };
    match out {
        Ok(payload) => (0, payload),
        Err(e) => {
            counter_add("serve.rpc_errors", 1);
            if e.code == ErrorCode::OverBudget {
                counter_add("serve.rejected.over_budget", 1);
            }
            (e.code as u8, e.message.into_bytes())
        }
    }
}

fn malformed(what: &str) -> ServeError {
    ServeError::new(ErrorCode::Malformed, format!("{what} failed to parse"))
}

/// Ceiling on a fetch response body: the frame length field is a u32,
/// and `write_response` errors (closing the session) rather than
/// truncate — answer `TooLarge` instead, keeping the session alive.
/// Slack covers the layout prefix.
const MAX_RESPONSE_BODY: usize = u32::MAX as usize - 64;

fn check_response_elems(n: usize) -> Result<(), ServeError> {
    if n.saturating_mul(4) > MAX_RESPONSE_BODY {
        return Err(ServeError::new(
            ErrorCode::TooLarge,
            format!("{n} f32 elems exceed the response frame's u32 length field"),
        ));
    }
    Ok(())
}

fn rpc_store(shared: &Arc<Shared>, tenant: u32, payload: &[u8]) -> Result<Vec<u8>, ServeError> {
    let (key, layout, eb, stream) =
        frame::parse_store_payload(payload).ok_or_else(|| malformed("store body"))?;
    // `checked_len` only proves the element product fits a usize; the
    // byte size can still wrap, and a wrapped `raw` would sail under
    // both ceilings.
    let raw = layout.len().checked_mul(4).ok_or_else(|| {
        ServeError::new(
            ErrorCode::TooLarge,
            format!("layout of {} elems overflows a byte count", layout.len()),
        )
    })?;
    let slot = tenant_slot(shared, tenant, true)?;
    let mut t = lock_tenant(&slot);
    // Global raw ceiling (all tiers, replacement-aware). The CAS
    // reservation serializes concurrent stores on *different* tenants:
    // each holds its worst-case bytes as pending until its own bytes
    // are mirrored into the settled total, so two stores cannot both
    // read a ceiling with room for only one.
    let raw_delta = raw.saturating_sub(t.raw_of(key));
    if !try_reserve(
        &shared.raw_total,
        &shared.raw_pending,
        raw_delta,
        shared.cfg.max_raw_bytes,
    ) {
        t.count_rejected();
        return Err(ServeError::new(
            ErrorCode::OverBudget,
            format!(
                "store of {raw} raw bytes would cross the global raw ceiling ({} of {} used)",
                shared.raw_total.load(Ordering::SeqCst),
                shared.cfg.max_raw_bytes
            ),
        ));
    }
    let _raw_hold = Reservation {
        pending: &shared.raw_pending,
        amount: raw_delta,
    };
    // Global resident ceiling: worst case the store lands hot, adding
    // min(raw, tenant budget) device bytes. Try the tiered eviction
    // pass before giving up. (Reclaim takes other tenants' locks, so
    // release ours around it — lock order stays "one tenant at a time".)
    let worst = raw.min(shared.cfg.tenant_budget_bytes);
    let mut reserved = try_reserve(
        &shared.resident_total,
        &shared.resident_pending,
        worst,
        shared.cfg.max_resident_bytes,
    );
    if !reserved {
        drop(t);
        global_reclaim(shared, worst);
        t = lock_tenant(&slot);
        reserved = try_reserve(
            &shared.resident_total,
            &shared.resident_pending,
            worst,
            shared.cfg.max_resident_bytes,
        );
    }
    if !reserved {
        t.count_rejected();
        return Err(ServeError::new(
            ErrorCode::OverBudget,
            format!(
                "no room under the global resident ceiling ({} of {} used after reclaim)",
                shared.resident_total.load(Ordering::SeqCst),
                shared.cfg.max_resident_bytes
            ),
        ));
    }
    let _resident_hold = Reservation {
        pending: &shared.resident_pending,
        amount: worst,
    };
    let out = t.store(&shared.registry, key, layout, eb, stream);
    // Mirror before the holds drop: totals then cover the stored bytes,
    // so total + pending never understates real usage.
    sync_slot(shared, &slot, &t);
    out.map(|tier| vec![tier_to_byte(tier)])
}

fn rpc_fetch(shared: &Arc<Shared>, tenant: u32, payload: &[u8]) -> Result<Vec<u8>, ServeError> {
    let mut off = 0;
    let key = get_u64(payload, &mut off).ok_or_else(|| malformed("fetch body"))?;
    let mode = get_u8(payload, &mut off).ok_or_else(|| malformed("fetch body"))?;
    if off != payload.len() {
        return Err(malformed("fetch body (trailing bytes)"));
    }
    if mode > 1 {
        return Err(ServeError::new(
            ErrorCode::Malformed,
            format!("unknown fetch mode {mode}"),
        ));
    }
    let slot = tenant_slot(shared, tenant, false)?;
    let mut t = lock_tenant(&slot);
    let (vals, layout) = t.fetch(key)?;
    sync_slot(shared, &slot, &t);
    drop(t); // re-compression below runs outside the tenant lock
    check_response_elems(vals.len())?;
    let mut out = Vec::new();
    frame::put_layout(&mut out, layout);
    if mode == 0 {
        frame::put_f32_body(&mut out, &vals);
    } else {
        let stream = shared
            .lossless
            .compress(&vals, layout, &BoundSpec::Lossless)
            .map_err(|e| ServeError::new(ErrorCode::Codec, format!("re-compress: {e}")))?;
        out.extend_from_slice(&stream.into_bytes());
    }
    Ok(out)
}

fn rpc_fetch_planes(
    shared: &Arc<Shared>,
    tenant: u32,
    payload: &[u8],
) -> Result<Vec<u8>, ServeError> {
    let mut off = 0;
    let key = get_u64(payload, &mut off).ok_or_else(|| malformed("fetch_planes body"))?;
    let start = get_u32(payload, &mut off).ok_or_else(|| malformed("fetch_planes body"))? as usize;
    let end = get_u32(payload, &mut off).ok_or_else(|| malformed("fetch_planes body"))? as usize;
    if off != payload.len() {
        return Err(malformed("fetch_planes body (trailing bytes)"));
    }
    let slot = tenant_slot(shared, tenant, false)?;
    let mut t = lock_tenant(&slot);
    let vals = t.fetch_planes(key, start, end)?;
    sync_slot(shared, &slot, &t);
    drop(t);
    check_response_elems(vals.len())?;
    let mut out = Vec::new();
    frame::put_f32_body(&mut out, &vals);
    Ok(out)
}

fn rpc_stats(shared: &Arc<Shared>, tenant: u32, payload: &[u8]) -> Result<Vec<u8>, ServeError> {
    if !payload.is_empty() {
        return Err(malformed("stats body (expected empty)"));
    }
    // Read-only: a stats probe must not mint tenant state, or scanning
    // tenant ids would grow arenas and gauges without bound. Unknown
    // tenants get the zero snapshot they would have as newcomers.
    match tenant_slot(shared, tenant, false) {
        Ok(slot) => {
            let t = lock_tenant(&slot);
            Ok(t.stats().encode())
        }
        Err(_) => Ok(TenantStats {
            budget_bytes: shared.cfg.tenant_budget_bytes as u64,
            ..TenantStats::default()
        }
        .encode()),
    }
}

fn rpc_evict(shared: &Arc<Shared>, tenant: u32, payload: &[u8]) -> Result<Vec<u8>, ServeError> {
    let mut off = 0;
    let key = get_u64(payload, &mut off).ok_or_else(|| malformed("evict body"))?;
    if off != payload.len() {
        return Err(malformed("evict body (trailing bytes)"));
    }
    let slot = tenant_slot(shared, tenant, false)?;
    let mut t = lock_tenant(&slot);
    let out = t.evict(key);
    sync_slot(shared, &slot, &t);
    out.map(|()| Vec::new())
}

/// The tiered cross-tenant eviction pass. Tier one shrinks tenants
/// holding more than their fair share (ceiling / tenant count) back to
/// it, largest overshoot first; tier two — only if still over — spills
/// everyone toward zero residency, largest first. One tenant lock at a
/// time, so the pass can never deadlock against in-flight RPCs.
/// Callers must not hold any tenant lock.
fn global_reclaim(shared: &Shared, need: usize) {
    counter_add("serve.reclaim.passes", 1);
    let slots: Vec<Arc<TenantSlot>> = {
        let map = shared.tenants.lock().expect("tenants poisoned");
        map.values().cloned().collect()
    };
    let ceiling = shared.cfg.max_resident_bytes;
    let fair = ceiling / slots.len().max(1);
    // Room must cover other stores' outstanding reservations too, or
    // the caller's retry would steal bytes they already hold.
    let fits = |shared: &Shared| {
        shared
            .resident_total
            .load(Ordering::SeqCst)
            .saturating_add(shared.resident_pending.load(Ordering::SeqCst))
            .saturating_add(need)
            <= ceiling
    };
    let mut freed_total = 0usize;
    for target in [fair, 0] {
        if fits(shared) {
            break;
        }
        let mut over: Vec<(usize, &Arc<TenantSlot>)> = slots
            .iter()
            .map(|s| (s.resident.load(Ordering::SeqCst), s))
            .filter(|(r, _)| *r > target)
            .collect();
        over.sort_by_key(|(r, _)| std::cmp::Reverse(*r));
        for (_, slot) in over {
            if fits(shared) {
                break;
            }
            let mut t = lock_tenant(slot);
            freed_total += t.reclaim_to(target);
            sync_slot(shared, slot, &t);
        }
    }
    counter_add("serve.reclaim.bytes", freed_total as u64);
}
