//! Blocking client for the serve protocol.
//!
//! One [`ServeClient`] owns one connection and issues RPCs
//! sequentially (the protocol has no request ids; concurrency comes
//! from opening more connections, which is exactly what the
//! `fig14_serve_scaling` load generator does).

use crate::frame::{self, ErrorCode, FrameError, RequestTag, DEFAULT_MAX_PAYLOAD};
use crate::tenant::TenantStats;
use crate::tier_from_byte;
use ebtrain_codec::{BoundSpec, Codec, SzCodec, TaggedStream};
use ebtrain_membudget::Tier;
use ebtrain_obs::netutil::{put_u32, put_u64};
use ebtrain_sz::DataLayout;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::ops::Range;

/// Client-side failure: transport, framing, a server-reported error,
/// or a success response whose body does not decode.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::ErrorKind),
    /// The response failed to frame.
    Frame(FrameError),
    /// The server answered with a typed error.
    Server {
        /// The wire error code.
        code: ErrorCode,
        /// The server's UTF-8 message.
        message: String,
    },
    /// A success response whose body does not decode as the RPC's
    /// schema (protocol bug or hostile server).
    BadResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(k) => write!(f, "io error: {k:?}"),
            ClientError::Frame(e) => write!(f, "framing: {e}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::BadResponse(what) => write!(f, "undecodable response body: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e.kind())
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        ClientError::Frame(e)
    }
}

impl ClientError {
    /// The server-side error code, when this is a server rejection.
    pub fn server_code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// Client result.
pub type ClientResult<T> = Result<T, ClientError>;

/// One connection to a serve daemon.
pub struct ServeClient {
    stream: TcpStream,
    max_payload: usize,
}

impl ServeClient {
    /// Connect to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(ServeClient {
            stream,
            max_payload: DEFAULT_MAX_PAYLOAD,
        })
    }

    /// One request/response exchange; server error statuses become
    /// [`ClientError::Server`].
    fn call(&mut self, tag: RequestTag, tenant: u32, payload: &[u8]) -> ClientResult<Vec<u8>> {
        frame::write_request(&mut self.stream, tag, tenant, payload)?;
        self.stream.flush()?;
        let resp = frame::read_response(&mut self.stream, self.max_payload)?;
        if resp.status == 0 {
            return Ok(resp.payload);
        }
        let code = ErrorCode::from_byte(resp.status).unwrap_or(ErrorCode::Internal);
        Err(ClientError::Server {
            code,
            message: String::from_utf8_lossy(&resp.payload).into_owned(),
        })
    }

    /// Liveness no-op.
    pub fn ping(&mut self, tenant: u32) -> ClientResult<()> {
        let body = self.call(RequestTag::Ping, tenant, &[])?;
        if body.is_empty() {
            Ok(())
        } else {
            Err(ClientError::BadResponse("ping body not empty"))
        }
    }

    /// Store an already-compressed stream under `key`; returns the
    /// tier it landed in. `eb > 0` overrides the tenant's at-rest
    /// demotion bound.
    pub fn store_stream(
        &mut self,
        tenant: u32,
        key: u64,
        layout: DataLayout,
        eb: f32,
        stream: &TaggedStream,
    ) -> ClientResult<Tier> {
        let payload = frame::store_payload(key, layout, eb, stream.as_bytes());
        let body = self.call(RequestTag::Store, tenant, &payload)?;
        match body.as_slice() {
            [b] => tier_from_byte(*b).ok_or(ClientError::BadResponse("unknown tier byte")),
            _ => Err(ClientError::BadResponse("store body not one tier byte")),
        }
    }

    /// Compress `data` client-side (SZ at `Abs(eb)`) and store it —
    /// the compressed-transport convenience path.
    pub fn store_f32(
        &mut self,
        tenant: u32,
        key: u64,
        data: &[f32],
        layout: DataLayout,
        eb: f32,
    ) -> ClientResult<Tier> {
        let stream = SzCodec::classic()
            .compress(data, layout, &BoundSpec::Abs(eb))
            .map_err(|_| ClientError::BadResponse("client-side compression failed"))?;
        self.store_stream(tenant, key, layout, eb, &stream)
    }

    /// Fetch a whole tensor as raw f32 values (non-destructive).
    pub fn fetch(&mut self, tenant: u32, key: u64) -> ClientResult<(Vec<f32>, DataLayout)> {
        let mut req = Vec::with_capacity(9);
        put_u64(&mut req, key);
        req.push(0); // mode 0: raw f32 body
        let body = self.call(RequestTag::Fetch, tenant, &req)?;
        let mut off = 0;
        let layout =
            frame::get_layout(&body, &mut off).ok_or(ClientError::BadResponse("fetch layout"))?;
        let vals =
            frame::get_f32_body(&body, &mut off).ok_or(ClientError::BadResponse("fetch body"))?;
        Ok((vals, layout))
    }

    /// Fetch a whole tensor as a lossless-compressed stream the caller
    /// decodes (trades server CPU for wire bytes; the values are
    /// bit-identical to [`fetch`](ServeClient::fetch)).
    pub fn fetch_compressed(
        &mut self,
        tenant: u32,
        key: u64,
    ) -> ClientResult<(TaggedStream, DataLayout)> {
        let mut req = Vec::with_capacity(9);
        put_u64(&mut req, key);
        req.push(1); // mode 1: lossless TaggedStream
        let body = self.call(RequestTag::Fetch, tenant, &req)?;
        let mut off = 0;
        let layout =
            frame::get_layout(&body, &mut off).ok_or(ClientError::BadResponse("fetch layout"))?;
        let stream = TaggedStream::from_bytes(body[off..].to_vec())
            .map_err(|_| ClientError::BadResponse("fetch stream"))?;
        Ok((stream, layout))
    }

    /// Fetch a leading-dimension plane range (non-destructive).
    pub fn fetch_planes(
        &mut self,
        tenant: u32,
        key: u64,
        planes: Range<usize>,
    ) -> ClientResult<Vec<f32>> {
        let mut req = Vec::with_capacity(16);
        put_u64(&mut req, key);
        put_u32(&mut req, planes.start as u32);
        put_u32(&mut req, planes.end as u32);
        let body = self.call(RequestTag::FetchPlanes, tenant, &req)?;
        let mut off = 0;
        frame::get_f32_body(&body, &mut off).ok_or(ClientError::BadResponse("fetch_planes body"))
    }

    /// Per-tenant stats snapshot.
    pub fn stats(&mut self, tenant: u32) -> ClientResult<TenantStats> {
        let body = self.call(RequestTag::Stats, tenant, &[])?;
        TenantStats::decode(&body).ok_or(ClientError::BadResponse("stats body"))
    }

    /// Remove one entry.
    pub fn evict(&mut self, tenant: u32, key: u64) -> ClientResult<()> {
        let mut req = Vec::with_capacity(8);
        put_u64(&mut req, key);
        let body = self.call(RequestTag::Evict, tenant, &req)?;
        if body.is_empty() {
            Ok(())
        } else {
            Err(ClientError::BadResponse("evict body not empty"))
        }
    }
}
