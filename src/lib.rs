//! # ebtrain
//!
//! Facade crate for the workspace reproducing *"A Novel Memory-Efficient
//! Deep Learning Training Framework via Error-Bounded Lossy Compression"*
//! (Jin, Li, Song, Tao — PPoPP'21): train DNNs in a fraction of the
//! activation memory by compressing stashed activations with an
//! SZ-style error-bounded lossy compressor, with the error bound chosen
//! adaptively so convergence is unaffected.
//!
//! Each subsystem lives in its own crate; this crate simply re-exports
//! them under one roof so examples and downstream users can depend on a
//! single package:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`obs`] | `ebtrain-obs` | metrics registry, spans, chrome-trace export |
//! | [`tensor`] | `ebtrain-tensor` | dense f32 tensors, GEMM, im2col |
//! | [`encoding`] | `ebtrain-encoding` | bit IO, Huffman, LZ, byte-plane |
//! | [`sz`] | `ebtrain-sz` | error-bounded lossy compressor |
//! | [`codec`] | `ebtrain-codec` | backend-agnostic codec trait, tagged streams, registry |
//! | [`imgcomp`] | `ebtrain-imgcomp` | JPEG-style baseline compressor |
//! | [`data`] | `ebtrain-data` | deterministic synthetic datasets |
//! | [`dnn`] | `ebtrain-dnn` | layers, networks, compressed store |
//! | [`core`] | `ebtrain-core` | adaptive error-bound framework |
//! | [`dist`] | `ebtrain-dist` | data-parallel compressed training (ring all-reduce over error-bounded gradient streams) |
//!
//! See `examples/quickstart.rs` for the five-minute tour.

pub use ebtrain_codec as codec;
pub use ebtrain_core as core;
pub use ebtrain_data as data;
pub use ebtrain_dist as dist;
pub use ebtrain_dnn as dnn;
pub use ebtrain_encoding as encoding;
pub use ebtrain_imgcomp as imgcomp;
pub use ebtrain_obs as obs;
pub use ebtrain_sz as sz;
pub use ebtrain_tensor as tensor;
