//! # ebtrain
//!
//! Facade crate for the workspace reproducing *"A Novel Memory-Efficient
//! Deep Learning Training Framework via Error-Bounded Lossy Compression"*
//! (Jin, Li, Song, Tao — PPoPP'21): train DNNs in a fraction of the
//! activation memory by compressing stashed activations with an
//! SZ-style error-bounded lossy compressor, with the error bound chosen
//! adaptively so convergence is unaffected.
//!
//! Each subsystem lives in its own crate; this crate simply re-exports
//! them under one roof so examples and downstream users can depend on a
//! single package:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`obs`] | `ebtrain-obs` | metrics registry, spans, chrome-trace export, shared TCP/netutil |
//! | [`pool`] | `ebtrain-pool` | persistent worker pool with inline-claim join |
//! | [`tensor`] | `ebtrain-tensor` | dense f32 tensors, GEMM, im2col |
//! | [`encoding`] | `ebtrain-encoding` | bit IO, Huffman, LZ, byte-plane |
//! | [`sz`] | `ebtrain-sz` | error-bounded lossy compressor |
//! | [`codec`] | `ebtrain-codec` | backend-agnostic codec trait, tagged streams, registry |
//! | [`imgcomp`] | `ebtrain-imgcomp` | JPEG-style baseline compressor |
//! | [`data`] | `ebtrain-data` | deterministic synthetic datasets |
//! | [`membudget`] | `ebtrain-membudget` | budgeted arenas with tiered compress/migrate eviction |
//! | [`dnn`] | `ebtrain-dnn` | layers, networks, compressed store |
//! | [`core`] | `ebtrain-core` | adaptive error-bound framework |
//! | [`dist`] | `ebtrain-dist` | data-parallel compressed training (ring all-reduce over error-bounded gradient streams) |
//! | [`serve`] | `ebtrain-serve` | multi-tenant compressed-tensor daemon with per-tenant budgets and admission control |
//!
//! See `examples/quickstart.rs` for the five-minute tour.

pub use ebtrain_codec as codec;
pub use ebtrain_core as core;
pub use ebtrain_data as data;
pub use ebtrain_dist as dist;
pub use ebtrain_dnn as dnn;
pub use ebtrain_encoding as encoding;
pub use ebtrain_imgcomp as imgcomp;
pub use ebtrain_membudget as membudget;
pub use ebtrain_obs as obs;
pub use ebtrain_pool as pool;
pub use ebtrain_serve as serve;
pub use ebtrain_sz as sz;
pub use ebtrain_tensor as tensor;
