//! Vendored, API-compatible subset of `rayon`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice-parallelism subset it uses: `par_iter`,
//! `par_iter_mut`, `par_chunks`, `par_chunks_mut` and the adapters
//! `map` / `zip` / `enumerate` / `for_each` / `sum` / `collect`.
//!
//! Unlike a toy sequential facade, this implementation **actually runs in
//! parallel**: work is split into contiguous sub-ranges and executed on
//! scoped OS threads (`std::thread::scope`), one per available core. There
//! is no work stealing, which is fine for the regular, evenly-sized loops
//! this workspace runs (GEMM row blocks, per-chunk codecs, elementwise
//! tensor ops).

use std::sync::OnceLock;

/// Number of worker threads (`RAYON_NUM_THREADS` overrides, like rayon).
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Everything needed for `slice.par_*()` method syntax.
pub mod prelude {
    pub use crate::iter::ParallelIterator;
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

pub mod iter {
    //! Splittable parallel iterators over borrowed slices.

    use crate::current_num_threads;

    /// A length-aware iterator that can be split at an index, the minimal
    /// contract a fork-join driver needs.
    pub trait ParSplit: Sized + Send {
        /// The element type handed to closures.
        type Item;

        /// Remaining item count.
        fn len(&self) -> usize;

        /// True when no items remain.
        fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Split into `[0, idx)` and `[idx, len)` pieces.
        fn split_at(self, idx: usize) -> (Self, Self);

        /// Drain this piece sequentially on the current thread.
        fn drive<F: FnMut(Self::Item)>(self, f: &mut F);
    }

    /// Cut `p` into at most `pieces` contiguous parts of near-equal size.
    fn split_into<P: ParSplit>(p: P, pieces: usize) -> Vec<P> {
        let total = p.len();
        if pieces <= 1 || total <= 1 {
            return vec![p];
        }
        let per = total.div_ceil(pieces);
        let mut out = Vec::with_capacity(pieces);
        let mut rest = p;
        while rest.len() > per {
            let (head, tail) = rest.split_at(per);
            out.push(head);
            rest = tail;
        }
        out.push(rest);
        out
    }

    /// Run `f` over every item of `p` on scoped worker threads.
    pub(crate) fn par_for_each<P, F>(p: P, f: F)
    where
        P: ParSplit,
        F: Fn(P::Item) + Sync,
    {
        let parts = current_num_threads().min(p.len().max(1));
        let pieces = split_into(p, parts);
        if pieces.len() == 1 {
            for piece in pieces {
                piece.drive(&mut |item| f(item));
            }
            return;
        }
        std::thread::scope(|s| {
            for piece in pieces {
                let f = &f;
                s.spawn(move || piece.drive(&mut |item| f(item)));
            }
        });
    }

    /// Map every item of `p` through `f` in parallel, preserving order.
    pub(crate) fn par_map_vec<P, R, F>(p: P, f: F) -> Vec<R>
    where
        P: ParSplit,
        R: Send,
        F: Fn(P::Item) -> R + Sync,
    {
        let parts = current_num_threads().min(p.len().max(1));
        let pieces = split_into(p, parts);
        if pieces.len() == 1 {
            let mut out = Vec::new();
            for piece in pieces {
                piece.drive(&mut |item| out.push(f(item)));
            }
            return out;
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = pieces
                .into_iter()
                .map(|piece| {
                    let f = &f;
                    s.spawn(move || {
                        let mut part = Vec::with_capacity(piece.len());
                        piece.drive(&mut |item| part.push(f(item)));
                        part
                    })
                })
                .collect();
            let mut out = Vec::new();
            for h in handles {
                out.extend(h.join().expect("rayon shim worker panicked"));
            }
            out
        })
    }

    /// Adapter methods, blanket-implemented for every splittable iterator.
    pub trait ParallelIterator: ParSplit {
        /// Parallel elementwise map; terminal ops run on worker threads.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Item) -> R + Sync,
        {
            Map { base: self, f }
        }

        /// Lock-step pairing with another parallel iterator.
        fn zip<B: ParSplit>(self, other: B) -> Zip<Self, B> {
            Zip { a: self, b: other }
        }

        /// Attach the item index.
        fn enumerate(self) -> Enumerate<Self> {
            Enumerate {
                base: self,
                offset: 0,
            }
        }

        /// Consume every item on worker threads.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync,
        {
            par_for_each(self, f);
        }
    }

    impl<P: ParSplit> ParallelIterator for P {}

    /// Parallel `map` adapter.
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<I, F, R> Map<I, F>
    where
        I: ParSplit,
        F: Fn(I::Item) -> R + Sync,
        R: Send,
    {
        /// Run the map and consume each result on worker threads.
        pub fn for_each<G>(self, g: G)
        where
            G: Fn(R) + Sync,
        {
            let f = self.f;
            par_for_each(self.base, move |item| g(f(item)));
        }

        /// Parallel map-reduce into a sum.
        pub fn sum<S>(self) -> S
        where
            S: std::iter::Sum<R>,
        {
            let f = self.f;
            par_map_vec(self.base, f).into_iter().sum()
        }

        /// Parallel map, then collect in input order (supports
        /// `Result<Vec<_>, E>` and any other `FromIterator` target).
        pub fn collect<C>(self) -> C
        where
            C: FromIterator<R>,
        {
            let f = self.f;
            par_map_vec(self.base, f).into_iter().collect()
        }

        /// Parallel map-reduce with an explicit fold.
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
        where
            ID: Fn() -> R + Sync,
            OP: Fn(R, R) -> R + Sync,
        {
            let f = self.f;
            par_map_vec(self.base, f).into_iter().fold(identity(), &op)
        }
    }

    /// Lock-step zip of two splittable iterators.
    pub struct Zip<A, B> {
        a: A,
        b: B,
    }

    impl<A: ParSplit, B: ParSplit> ParSplit for Zip<A, B> {
        type Item = (A::Item, B::Item);

        fn len(&self) -> usize {
            self.a.len().min(self.b.len())
        }

        fn split_at(self, idx: usize) -> (Self, Self) {
            let (a0, a1) = self.a.split_at(idx);
            let (b0, b1) = self.b.split_at(idx);
            (Zip { a: a0, b: b0 }, Zip { a: a1, b: b1 })
        }

        fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
            let n = self.len();
            let mut bs = Vec::with_capacity(n);
            self.b.drive(&mut |item| bs.push(item));
            let mut bs = bs.into_iter();
            let mut taken = 0usize;
            self.a.drive(&mut |a_item| {
                if taken < n {
                    if let Some(b_item) = bs.next() {
                        f((a_item, b_item));
                        taken += 1;
                    }
                }
            });
        }
    }

    /// Index-attaching adapter.
    pub struct Enumerate<I> {
        base: I,
        offset: usize,
    }

    impl<I: ParSplit> ParSplit for Enumerate<I> {
        type Item = (usize, I::Item);

        fn len(&self) -> usize {
            self.base.len()
        }

        fn split_at(self, idx: usize) -> (Self, Self) {
            let (head, tail) = self.base.split_at(idx);
            (
                Enumerate {
                    base: head,
                    offset: self.offset,
                },
                Enumerate {
                    base: tail,
                    offset: self.offset + idx,
                },
            )
        }

        fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
            let mut i = self.offset;
            self.base.drive(&mut |item| {
                f((i, item));
                i += 1;
            });
        }
    }
}

pub mod slice {
    //! `par_iter`/`par_chunks` entry points on `[T]`.

    use crate::iter::ParSplit;

    /// Shared-slice parallel views.
    pub trait ParallelSlice<T: Sync> {
        /// Parallel `iter()`.
        fn par_iter(&self) -> Iter<'_, T>;
        /// Parallel `chunks(size)`.
        fn par_chunks(&self, size: usize) -> Chunks<'_, T>;
    }

    /// Mutable-slice parallel views.
    pub trait ParallelSliceMut<T: Send> {
        /// Parallel `iter_mut()`.
        fn par_iter_mut(&mut self) -> IterMut<'_, T>;
        /// Parallel `chunks_mut(size)`.
        fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> Iter<'_, T> {
            Iter { s: self }
        }

        fn par_chunks(&self, size: usize) -> Chunks<'_, T> {
            assert!(size > 0, "par_chunks size must be non-zero");
            Chunks { s: self, size }
        }
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> IterMut<'_, T> {
            IterMut { s: self }
        }

        fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T> {
            assert!(size > 0, "par_chunks_mut size must be non-zero");
            ChunksMut { s: self, size }
        }
    }

    /// Parallel shared-element iterator.
    pub struct Iter<'a, T> {
        s: &'a [T],
    }

    impl<'a, T: Sync> ParSplit for Iter<'a, T> {
        type Item = &'a T;

        fn len(&self) -> usize {
            self.s.len()
        }

        fn split_at(self, idx: usize) -> (Self, Self) {
            let (a, b) = self.s.split_at(idx);
            (Iter { s: a }, Iter { s: b })
        }

        fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
            for item in self.s {
                f(item);
            }
        }
    }

    /// Parallel mutable-element iterator.
    pub struct IterMut<'a, T> {
        s: &'a mut [T],
    }

    impl<'a, T: Send> ParSplit for IterMut<'a, T> {
        type Item = &'a mut T;

        fn len(&self) -> usize {
            self.s.len()
        }

        fn split_at(self, idx: usize) -> (Self, Self) {
            let (a, b) = self.s.split_at_mut(idx);
            (IterMut { s: a }, IterMut { s: b })
        }

        fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
            for item in self.s.iter_mut() {
                f(item);
            }
        }
    }

    /// Parallel shared-chunk iterator.
    pub struct Chunks<'a, T> {
        s: &'a [T],
        size: usize,
    }

    impl<'a, T: Sync> ParSplit for Chunks<'a, T> {
        type Item = &'a [T];

        fn len(&self) -> usize {
            self.s.len().div_ceil(self.size)
        }

        fn split_at(self, idx: usize) -> (Self, Self) {
            let elems = (idx * self.size).min(self.s.len());
            let (a, b) = self.s.split_at(elems);
            (
                Chunks {
                    s: a,
                    size: self.size,
                },
                Chunks {
                    s: b,
                    size: self.size,
                },
            )
        }

        fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
            for chunk in self.s.chunks(self.size) {
                f(chunk);
            }
        }
    }

    /// Parallel mutable-chunk iterator.
    pub struct ChunksMut<'a, T> {
        s: &'a mut [T],
        size: usize,
    }

    impl<'a, T: Send> ParSplit for ChunksMut<'a, T> {
        type Item = &'a mut [T];

        fn len(&self) -> usize {
            self.s.len().div_ceil(self.size)
        }

        fn split_at(self, idx: usize) -> (Self, Self) {
            let elems = (idx * self.size).min(self.s.len());
            let (a, b) = self.s.split_at_mut(elems);
            (
                ChunksMut {
                    s: a,
                    size: self.size,
                },
                ChunksMut {
                    s: b,
                    size: self.size,
                },
            )
        }

        fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
            for chunk in self.s.chunks_mut(self.size) {
                f(chunk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled.len(), v.len());
        for (i, d) in doubled.iter().enumerate() {
            assert_eq!(*d, 2 * i as u64);
        }
    }

    #[test]
    fn par_iter_map_collect_result_short_circuits_value() {
        let v: Vec<u32> = (0..1000).collect();
        let ok: Result<Vec<u32>, String> = v.par_iter().map(|x| Ok(*x)).collect();
        assert_eq!(ok.unwrap().len(), 1000);
        let err: Result<Vec<u32>, String> = v
            .par_iter()
            .map(|x| {
                if *x == 500 {
                    Err("boom".to_string())
                } else {
                    Ok(*x)
                }
            })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn par_iter_mut_zip_writes_every_slot() {
        let src: Vec<f32> = (0..5000).map(|i| i as f32).collect();
        let mut dst = vec![0.0f32; 5000];
        dst.par_iter_mut()
            .zip(src.par_iter())
            .for_each(|(d, s)| *d = s + 1.0);
        for (i, d) in dst.iter().enumerate() {
            assert_eq!(*d, i as f32 + 1.0);
        }
    }

    #[test]
    fn par_chunks_map_sum_matches_serial() {
        let v: Vec<f64> = (0..12_345).map(|i| i as f64).collect();
        let par: f64 = v.par_chunks(512).map(|c| c.iter().sum::<f64>()).sum();
        let serial: f64 = v.iter().sum();
        assert!((par - serial).abs() < 1e-6);
    }

    #[test]
    fn par_chunks_mut_enumerate_sees_correct_indices() {
        let mut v = vec![0usize; 1000];
        v.par_chunks_mut(37)
            .enumerate()
            .for_each(|(ci, chunk)| chunk.iter_mut().for_each(|x| *x = ci));
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i / 37);
        }
    }

    #[test]
    fn zip_of_chunks_pairs_aligned_blocks() {
        let a: Vec<f32> = (0..1024).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..1024).map(|i| (i * 2) as f32).collect();
        let dot: f32 = a
            .par_chunks(128)
            .zip(b.par_chunks(128))
            .map(|(ca, cb)| ca.iter().zip(cb).map(|(x, y)| x * y).sum::<f32>())
            .sum();
        // Same chunked association as the parallel path: per-chunk partial
        // sums, then a sum of partials (a flat serial sum would differ by
        // f32 reassociation error).
        let serial: f32 = a
            .chunks(128)
            .zip(b.chunks(128))
            .map(|(ca, cb)| ca.iter().zip(cb).map(|(x, y)| x * y).sum::<f32>())
            .sum();
        assert_eq!(dot, serial);
    }
}
