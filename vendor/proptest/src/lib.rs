//! Vendored, API-compatible subset of `proptest`.
//!
//! The build environment has no network access to crates.io, so the
//! property-test suites link against this minimal harness. It covers the
//! subset the workspace uses — `proptest!`, `prop_oneof!`, `prop_assert!`,
//! `prop_assert_eq!`, `Strategy`, `Just`, `any`, `prop::collection::vec`,
//! `ProptestConfig::with_cases` — generating inputs from a deterministic
//! seeded RNG.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs in the assertion message instead of a minimized one)
//! and a fixed deterministic seed per test function (override with the
//! `PROPTEST_SEED` env var to explore different streams).

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn gen_value(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
            (**self).gen_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
            (**self).gen_value(rng)
        }
    }

    /// Box a strategy for storage in heterogeneous collections.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    /// Uniform over a type's full value domain.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// `any::<T>()` — arbitrary values of `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_any_via_bits {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen::<$t>()
                }
            }
        )*};
    }

    impl_any_via_bits!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// Weighted union of boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! weights sum to zero");
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut StdRng) -> T {
            let mut pick = rng.gen_range(0..self.total_weight);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.gen_value(rng);
                }
                pick -= *w as u64;
            }
            self.arms.last().unwrap().1.gen_value(rng)
        }
    }

    /// `Vec` strategy with a length range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S> VecStrategy<S> {
        pub(crate) fn new(elem: S, len: Range<usize>) -> Self {
            VecStrategy { elem, len }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.gen_value(rng)).collect()
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Vectors of `elem`-generated values with length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy::new(elem, len)
    }
}

/// Namespace mirror of upstream's `proptest::prop` re-export.
pub mod prop {
    pub use crate::collection;
}

pub mod test_runner {
    //! Runner configuration.

    /// How many generated cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated inputs per property test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// Seed for a property test's RNG stream (deterministic; `PROPTEST_SEED`
/// overrides).
pub fn resolve_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xEB7_7E57_5EED)
}

/// Glob-import surface matching `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use rand::rngs::StdRng;
    pub use rand::{Rng, SeedableRng};
}

// Re-export so macro-generated code can name the RNG via `$crate`.
#[doc(hidden)]
pub use rand as __rand;

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, {
                // Upstream proptest arms are conventionally parenthesized
                // range expressions; don't lint the caller for that.
                #[allow(unused_parens)]
                let __arm = $strategy;
                $crate::strategy::boxed(__arm)
            })),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strategy),+)
    };
}

/// Assertion inside a `proptest!` body (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `#[test] fn name(pat in strategy, ...)`
/// expands to a normal `#[test]` that loops over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $(
        $(#[$meta:meta])+
        fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            use $crate::__rand::SeedableRng as _;
            let __config: $crate::test_runner::Config = $config;
            // FNV-1a over the test name: each property gets its own stream.
            let mut __h: u64 = 0xcbf2_9ce4_8422_2325;
            for __b in stringify!($name).as_bytes() {
                __h = (__h ^ *__b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut __rng =
                $crate::__rand::rngs::StdRng::seed_from_u64($crate::resolve_seed() ^ __h);
            for __case in 0..__config.cases {
                $(
                    let $pat = $crate::strategy::Strategy::gen_value(&($strategy), &mut __rng);
                )+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn weighted_small() -> impl Strategy<Value = f32> {
        prop_oneof![
            3 => (-1.0f32..1.0),
            1 => Just(0.0f32),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -5i32..0, y in 0.0f32..1.0) {
            prop_assert!((-5..0).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u32..10, 2..17)) {
            prop_assert!(v.len() >= 2 && v.len() < 17);
            for e in &v {
                prop_assert!(*e < 10);
            }
        }

        #[test]
        fn oneof_hits_all_arms(x in weighted_small()) {
            prop_assert!(x == 0.0 || (-1.0..1.0).contains(&x));
        }

        #[test]
        fn any_u64_works(seed in any::<u64>()) {
            let _ = StdRng::seed_from_u64(seed);
        }
    }

    #[test]
    fn union_weights_are_respected_roughly() {
        let s = prop_oneof![9 => Just(1u32), 1 => Just(0u32)];
        let mut rng = StdRng::seed_from_u64(1);
        let ones: u32 = (0..1000)
            .map(|_| crate::strategy::Strategy::gen_value(&s, &mut rng))
            .sum();
        assert!(ones > 800, "expected ~900 ones, got {ones}");
    }
}
