//! Vendored, API-compatible subset of `proptest`.
//!
//! The build environment has no network access to crates.io, so the
//! property-test suites link against this minimal harness. It covers the
//! subset the workspace uses — `proptest!`, `prop_oneof!`, `prop_assert!`,
//! `prop_assert_eq!`, `Strategy`, `Just`, `any`, `prop::collection::vec`,
//! `ProptestConfig::with_cases` — generating inputs from a deterministic
//! seeded RNG.
//!
//! Differences from upstream: shrinking is a minimal bounded bisection
//! (vectors halve, scalars move toward zero — see [`shrink::Shrinkable`])
//! rather than upstream's full shrink trees, and seeding is deterministic
//! per `(test function, case index)`. `PROPTEST_SEED` re-seeds every
//! stream; a failure report prints the failing case's own seed, which
//! `PROPTEST_REPLAY` re-runs as a single case for fast reproduction.

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn gen_value(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
            (**self).gen_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
            (**self).gen_value(rng)
        }
    }

    /// Box a strategy for storage in heterogeneous collections.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    /// Uniform over a type's full value domain.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// `any::<T>()` — arbitrary values of `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_any_via_bits {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen::<$t>()
                }
            }
        )*};
    }

    impl_any_via_bits!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// Weighted union of boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! weights sum to zero");
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut StdRng) -> T {
            let mut pick = rng.gen_range(0..self.total_weight);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.gen_value(rng);
                }
                pick -= *w as u64;
            }
            self.arms.last().unwrap().1.gen_value(rng)
        }
    }

    /// `Vec` strategy with a length range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S> VecStrategy<S> {
        pub(crate) fn new(elem: S, len: Range<usize>) -> Self {
            VecStrategy { elem, len }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.gen_value(rng)).collect()
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Vectors of `elem`-generated values with length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy::new(elem, len)
    }
}

/// Namespace mirror of upstream's `proptest::prop` re-export.
pub mod prop {
    pub use crate::collection;
}

pub mod test_runner {
    //! Runner configuration.

    /// How many generated cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated inputs per property test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// Seed for a property test's RNG stream (deterministic; `PROPTEST_SEED`
/// overrides).
pub fn resolve_seed() -> u64 {
    parse_seed_env("PROPTEST_SEED").unwrap_or(0xEB7_7E57_5EED)
}

/// Parse a decimal or `0x`-prefixed hex u64 from an env var.
fn parse_seed_env(var: &str) -> Option<u64> {
    let s = std::env::var(var).ok()?;
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse::<u64>().ok()
    }
}

pub mod shrink {
    //! Minimal bisection shrinking over generated **values**.
    //!
    //! Upstream proptest shrinks through strategy-specific trees; this
    //! shim shrinks the values themselves: vectors halve (and each
    //! element may step toward zero), scalars move toward zero, tuples
    //! shrink one component at a time. Candidates never include the
    //! value itself, so the runner's greedy descent terminates.

    /// A value that can propose strictly-smaller candidates of itself.
    pub trait Shrinkable: Sized {
        /// Simpler candidate values, most aggressive first. Must never
        /// yield a candidate equal to `self`.
        fn shrink_candidates(&self) -> Vec<Self>;
    }

    macro_rules! impl_shrink_uint {
        ($($t:ty),*) => {$(
            impl Shrinkable for $t {
                fn shrink_candidates(&self) -> Vec<Self> {
                    let x = *self;
                    if x == 0 {
                        return Vec::new();
                    }
                    let mut out = vec![0];
                    if x / 2 != 0 {
                        out.push(x / 2);
                    }
                    out
                }
            }
        )*};
    }
    impl_shrink_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_shrink_int {
        ($($t:ty),*) => {$(
            impl Shrinkable for $t {
                fn shrink_candidates(&self) -> Vec<Self> {
                    let x = *self;
                    if x == 0 {
                        return Vec::new();
                    }
                    let mut out = vec![0];
                    if x / 2 != 0 {
                        out.push(x / 2);
                    }
                    out
                }
            }
        )*};
    }
    impl_shrink_int!(i8, i16, i32, i64, isize);

    macro_rules! impl_shrink_float {
        ($($t:ty),*) => {$(
            impl Shrinkable for $t {
                fn shrink_candidates(&self) -> Vec<Self> {
                    let x = *self;
                    if x.is_nan() {
                        return vec![0.0];
                    }
                    if x == 0.0 {
                        return Vec::new();
                    }
                    let mut out = vec![0.0];
                    let half = x / 2.0;
                    if half.is_finite() && half != 0.0 && half.to_bits() != x.to_bits() {
                        out.push(half);
                    }
                    out
                }
            }
        )*};
    }
    impl_shrink_float!(f32, f64);

    impl Shrinkable for bool {
        fn shrink_candidates(&self) -> Vec<Self> {
            if *self {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    impl<T: Shrinkable + Clone> Shrinkable for Vec<T> {
        fn shrink_candidates(&self) -> Vec<Self> {
            let n = self.len();
            if n == 0 {
                return Vec::new();
            }
            // Bisection first: either half may reproduce the failure at
            // half the size. Then per-element scalar shrinks.
            let mut out = Vec::new();
            if n >= 1 {
                out.push(self[..n / 2].to_vec());
            }
            if n >= 2 {
                out.push(self[n / 2..].to_vec());
            }
            for i in 0..n {
                for cand in self[i].shrink_candidates() {
                    let mut v = self.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }

    macro_rules! impl_shrink_tuple {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Shrinkable + Clone),+> Shrinkable for ($($name,)+) {
                fn shrink_candidates(&self) -> Vec<Self> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink_candidates() {
                            let mut t = self.clone();
                            t.$idx = cand;
                            out.push(t);
                        }
                    )+
                    out
                }
            }
        )*};
    }
    impl_shrink_tuple! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    }
}

pub mod runner {
    //! The case loop behind `proptest!`: per-case seeding, failure
    //! capture, bounded greedy shrinking, and replayable reports.

    use crate::shrink::Shrinkable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Candidate-evaluation budget per failure: bounds shrink time on
    /// pathological cases while comfortably minimizing typical inputs.
    const SHRINK_BUDGET: usize = 512;

    /// Per-case seed: mixes the base stream seed with the case index so
    /// any single case re-generates without replaying its predecessors.
    fn case_seed(base: u64, case: u32) -> u64 {
        (base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(0x5EED)
    }

    /// Silences the global panic hook while candidate shrink runs panic
    /// on purpose; restores the original hook on drop. Nesting-safe
    /// across threads via a depth counter.
    struct QuietPanics;

    type Hook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;
    static HOOK_DEPTH: std::sync::Mutex<(usize, Option<Hook>)> = std::sync::Mutex::new((0, None));

    impl QuietPanics {
        fn engage() -> QuietPanics {
            let mut guard = HOOK_DEPTH.lock().unwrap();
            if guard.0 == 0 {
                guard.1 = Some(std::panic::take_hook());
                std::panic::set_hook(Box::new(|_| {}));
            }
            guard.0 += 1;
            QuietPanics
        }
    }

    impl Drop for QuietPanics {
        fn drop(&mut self) {
            let mut guard = HOOK_DEPTH.lock().unwrap();
            guard.0 -= 1;
            if guard.0 == 0 {
                if let Some(hook) = guard.1.take() {
                    std::panic::set_hook(hook);
                }
            }
        }
    }

    fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        }
    }

    /// Greedy descent: repeatedly adopt the first failing candidate
    /// until no candidate fails or the budget runs out. Returns the
    /// minimal failing value, its panic payload, and the step count.
    fn shrink_failure<V, F>(
        run: &F,
        mut value: V,
        mut payload: Box<dyn std::any::Any + Send>,
    ) -> (V, Box<dyn std::any::Any + Send>, usize)
    where
        V: Clone + Shrinkable,
        F: Fn(V),
    {
        let _quiet = QuietPanics::engage();
        let mut budget = SHRINK_BUDGET;
        let mut steps = 0usize;
        'outer: loop {
            for cand in value.shrink_candidates() {
                if budget == 0 {
                    break 'outer;
                }
                budget -= 1;
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| run(cand.clone()))) {
                    value = cand;
                    payload = p;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }
        (value, payload, steps)
    }

    /// Drive one property: generate `cases` inputs (or replay a single
    /// seed from `PROPTEST_REPLAY`), and on failure shrink before
    /// reporting. Called by the `proptest!` expansion — not public API
    /// in upstream, so keep user code off it.
    pub fn run_property<V, G, F>(name: &str, cases: u32, gen: G, run: F)
    where
        V: Clone + std::fmt::Debug + Shrinkable,
        G: Fn(&mut StdRng) -> V,
        F: Fn(V),
    {
        // FNV-1a over the test name: each property gets its own stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h = (h ^ *b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let base = crate::resolve_seed() ^ h;

        if let Some(replay) = crate::parse_seed_env("PROPTEST_REPLAY") {
            run_one(name, replay, u32::MAX, &gen, &run);
            return;
        }
        for case in 0..cases {
            run_one(name, case_seed(base, case), case, &gen, &run);
        }
    }

    fn run_one<V, G, F>(name: &str, seed: u64, case: u32, gen: &G, run: &F)
    where
        V: Clone + std::fmt::Debug + Shrinkable,
        G: Fn(&mut StdRng) -> V,
        F: Fn(V),
    {
        let value = gen(&mut StdRng::seed_from_u64(seed));
        let original = value.clone();
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run(value))) {
            let (minimal, payload, steps) = shrink_failure(run, original, payload);
            panic!(
                "property '{name}' failed (case {case}); minimal failing input after \
                 {steps} shrink step(s): {minimal:?}; panic: {}; replay with \
                 PROPTEST_REPLAY={seed} (stream seed: PROPTEST_SEED={})",
                payload_message(payload.as_ref()),
                crate::resolve_seed(),
            );
        }
    }
}

/// Glob-import surface matching `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use rand::rngs::StdRng;
    pub use rand::{Rng, SeedableRng};
}

// Re-export so macro-generated code can name the RNG via `$crate`.
#[doc(hidden)]
pub use rand as __rand;

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, {
                // Upstream proptest arms are conventionally parenthesized
                // range expressions; don't lint the caller for that.
                #[allow(unused_parens)]
                let __arm = $strategy;
                $crate::strategy::boxed(__arm)
            })),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strategy),+)
    };
}

/// Assertion inside a `proptest!` body (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `#[test] fn name(pat in strategy, ...)`
/// expands to a normal `#[test]` that loops over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $(
        $(#[$meta:meta])+
        fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            $crate::runner::run_property(
                stringify!($name),
                __config.cases,
                |__rng| ($( $crate::strategy::Strategy::gen_value(&($strategy), __rng), )+),
                |($($pat,)+)| { $body },
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn weighted_small() -> impl Strategy<Value = f32> {
        prop_oneof![
            3 => (-1.0f32..1.0),
            1 => Just(0.0f32),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -5i32..0, y in 0.0f32..1.0) {
            prop_assert!((-5..0).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u32..10, 2..17)) {
            prop_assert!(v.len() >= 2 && v.len() < 17);
            for e in &v {
                prop_assert!(*e < 10);
            }
        }

        #[test]
        fn oneof_hits_all_arms(x in weighted_small()) {
            prop_assert!(x == 0.0 || (-1.0..1.0).contains(&x));
        }

        #[test]
        fn any_u64_works(seed in any::<u64>()) {
            let _ = StdRng::seed_from_u64(seed);
        }
    }

    #[test]
    fn union_weights_are_respected_roughly() {
        let s = prop_oneof![9 => Just(1u32), 1 => Just(0u32)];
        let mut rng = StdRng::seed_from_u64(1);
        let ones: u32 = (0..1000)
            .map(|_| crate::strategy::Strategy::gen_value(&s, &mut rng))
            .sum();
        assert!(ones > 800, "expected ~900 ones, got {ones}");
    }

    #[test]
    fn scalar_shrink_moves_toward_zero() {
        use crate::shrink::Shrinkable;
        assert_eq!(800u32.shrink_candidates(), vec![0, 400]);
        assert_eq!(1u32.shrink_candidates(), vec![0]);
        assert!(0u32.shrink_candidates().is_empty());
        assert_eq!((-8i32).shrink_candidates(), vec![0, -4]);
        assert_eq!(4.0f32.shrink_candidates(), vec![0.0, 2.0]);
        assert!(0.0f64.shrink_candidates().is_empty());
        assert_eq!(f32::NAN.shrink_candidates(), vec![0.0]);
        // Infinity halves to itself: only zero may be proposed, or the
        // greedy descent would loop on an unchanged candidate.
        assert_eq!(f64::INFINITY.shrink_candidates(), vec![0.0]);
    }

    #[test]
    fn vector_shrink_bisects_and_shrinks_elements() {
        use crate::shrink::Shrinkable;
        let cands = vec![8u32, 6].shrink_candidates();
        assert!(cands.contains(&vec![8]), "first half missing: {cands:?}");
        assert!(cands.contains(&vec![6]), "second half missing: {cands:?}");
        assert!(
            cands.contains(&vec![0, 6]),
            "element shrink missing: {cands:?}"
        );
        assert!(Vec::<u32>::new().shrink_candidates().is_empty());
    }

    /// The satellite contract: a seeded failing case must come back
    /// minimized, with a replayable per-case seed in the report.
    #[test]
    fn seeded_failure_shrinks_to_minimal_input() {
        let result = std::panic::catch_unwind(|| {
            crate::runner::run_property(
                "shrink_probe",
                64,
                |rng| {
                    (crate::strategy::Strategy::gen_value(
                        &prop::collection::vec(0u32..1000, 4..40),
                        rng,
                    ),)
                },
                |(v,)| assert!(v.iter().all(|&x| x < 500), "element out of range"),
            );
        });
        let payload = result.expect_err("property with ~half-failing elements must fail");
        let msg = payload
            .downcast_ref::<String>()
            .expect("shrunk report is a formatted string")
            .clone();
        assert!(
            msg.contains("minimal failing input"),
            "report should carry the minimized case: {msg}"
        );
        assert!(
            msg.contains("PROPTEST_REPLAY="),
            "report should carry a replay seed: {msg}"
        );
        // The minimal counterexample to `all < 500` is a single element
        // in [500, 1000): bisection must get the vector down to length 1
        // (its element only shrinks to values < 500, which pass).
        let inner = msg
            .split_once('[')
            .and_then(|(_, rest)| rest.split_once(']'))
            .map(|(inner, _)| inner)
            .expect("report contains a debug-printed vector");
        assert!(
            !inner.contains(',') && inner.trim().parse::<u32>().expect("one element") >= 500,
            "expected a single >=500 element, got [{inner}] in: {msg}"
        );
    }

    /// `PROPTEST_REPLAY` runs exactly one case, generated from the given
    /// seed. (Sets a process-global env var: if another property in this
    /// binary reads it concurrently it replays one passing case — never
    /// a spurious failure.)
    #[test]
    fn replay_env_var_reruns_a_single_case() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let runs = AtomicUsize::new(0);
        std::env::set_var("PROPTEST_REPLAY", "12345");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::runner::run_property(
                "replay_probe",
                64,
                |rng| (crate::strategy::Strategy::gen_value(&(0u32..10), rng),),
                |(_x,)| {
                    runs.fetch_add(1, Ordering::SeqCst);
                },
            );
        }));
        std::env::remove_var("PROPTEST_REPLAY");
        result.expect("replayed passing case must pass");
        assert_eq!(
            runs.load(Ordering::SeqCst),
            1,
            "replay must run exactly one case"
        );
    }
}
