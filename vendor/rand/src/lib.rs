//! Vendored, API-compatible subset of the `rand` 0.8 crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), [`SeedableRng`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), and
//! [`distributions::{Distribution, Uniform, Standard}`](distributions).
//!
//! Streams are deterministic for a given seed but are **not** bit-compatible
//! with upstream `rand`; nothing in the workspace depends on upstream
//! streams, only on seeded determinism.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`Standard`](distributions::Standard)
    /// distribution (`f32`/`f64` in `[0, 1)`, full-range integers).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 random mantissa bits -> [0, 1)
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32(bits: u64) -> f32 {
    // 24 random mantissa bits -> [0, 1)
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Sample from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                if span == 0 {
                    return lo;
                }
                // Multiply-shift keeps the modulo bias below 2^-64.
                let v = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self {
        let u = unit_f32(rng.next_u64());
        let v = lo + (hi - lo) * u;
        if !inclusive && v >= hi {
            // Guard against rounding up to the excluded endpoint.
            lo.max(hi - (hi - lo) * f32::EPSILON)
        } else {
            v.min(hi)
        }
    }
}

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self {
        let u = unit_f64(rng.next_u64());
        let v = lo + (hi - lo) * u;
        if !inclusive && v >= hi {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            v.min(hi)
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ with SplitMix64 seeding.
    ///
    /// Fast, passes BigCrush, and — unlike upstream's ChaCha12-based
    /// `StdRng` — implementable in a few lines with no external crates.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sampling distributions.
pub mod distributions {
    use super::{unit_f32, unit_f64, Rng, SampleUniform};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: SampleUniform + Copy> Uniform<T> {
        /// Uniform over the half-open range `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new called with empty range");
            Uniform { low, high }
        }

        /// Uniform over the closed range `[low, high]`.
        pub fn new_inclusive(low: T, high: T) -> Self {
            assert!(
                low <= high,
                "Uniform::new_inclusive called with empty range"
            );
            Uniform { low, high }
        }
    }

    impl<T: SampleUniform + Copy> Distribution<T> for Uniform<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_between(rng, self.low, self.high, false)
        }
    }

    /// The "natural" distribution: unit interval for floats, full range for
    /// integers, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f32(rng.next_u64())
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f32 = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&v));
            let i: i32 = rng.gen_range(-200i32..200);
            assert!((-200..200).contains(&i));
            let u: usize = rng.gen_range(0..7usize);
            assert!(u < 7);
            let e: f32 = rng.gen_range(-0.5f32..=0.5);
            assert!((-0.5..=0.5).contains(&e));
        }
    }

    #[test]
    fn gen_bool_probability_is_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "p=0.25 measured {frac}");
    }

    #[test]
    fn uniform_distribution_samples_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = Uniform::new(-2.0f32, 2.0);
        for _ in 0..1000 {
            let v = dist.sample(&mut rng);
            assert!((-2.0..2.0).contains(&v));
        }
    }
}
