//! Vendored, API-compatible subset of the `criterion` bench harness.
//!
//! The build environment has no network access to crates.io, so the two
//! `benches/*.rs` files link against this minimal harness instead. It
//! supports the subset they use — `criterion_group!`/`criterion_main!`,
//! benchmark groups, `Throughput`, `BenchmarkId`, `Bencher::iter` — and
//! reports mean wall-clock time per iteration (plus derived throughput)
//! on stdout. No statistical analysis, HTML reports, or comparison with
//! saved baselines.
//!
//! `cargo test` executes `harness = false` bench targets too; like real
//! criterion, a `--test` argument switches to a single-iteration smoke
//! run so the test suite stays fast.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Results accumulated by [`run_one`] for the machine-readable summary
/// written at the end of `criterion_main!` (see [`write_json_summary`]).
struct SampleRecord {
    label: String,
    median_ns: f64,
    best_ns: f64,
    /// Per-iteration sample quantiles (p50 == median of the samples;
    /// `None` for externally-measured rows recorded without samples).
    p50_ns: Option<f64>,
    p90_ns: Option<f64>,
    p99_ns: Option<f64>,
    /// Bytes processed per iteration, when the group declared
    /// `Throughput::Bytes`.
    bytes_per_iter: Option<u64>,
    /// Elements processed per iteration (`Throughput::Elements`).
    elems_per_iter: Option<u64>,
}

/// Nearest-rank quantile of an ascending-sorted sample slice.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

static RESULTS: Mutex<Vec<SampleRecord>> = Mutex::new(Vec::new());

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement configuration and entry point, one per bench binary.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 100,
            test_mode,
        }
    }
}

impl Criterion {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, self.test_mode, None, f);
        self
    }
}

/// Units for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A `function_name/parameter` benchmark label.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Label `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Label from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group only (like real
    /// criterion, the override dies with the group).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = Some(n);
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.c.sample_size)
    }

    /// Run a benchmark under `group_name/name`.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(
            &label,
            self.effective_sample_size(),
            self.c.test_mode,
            self.throughput,
            f,
        );
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.full);
        run_one(
            &label,
            self.effective_sample_size(),
            self.c.test_mode,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// End the group (drop marker for API compatibility).
    pub fn finish(self) {}
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` back-to-back invocations of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(
    label: &str,
    sample_size: usize,
    test_mode: bool,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {label} ... ok");
        return;
    }

    // Calibrate: grow the iteration count until one sample costs >= 1 ms,
    // so cheap kernels are not drowned in timer noise.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let best = per_iter[0];
    let p90 = quantile_sorted(&per_iter, 0.90);
    let p99 = quantile_sorted(&per_iter, 0.99);

    let rate = match throughput {
        Some(Throughput::Bytes(n)) => format!("  {:>10}/s", human_bytes(n as f64 / median)),
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.2} Melem/s", n as f64 / median / 1e6)
        }
        None => String::new(),
    };
    println!(
        "{label:<48} median {}  best {}  p99 {}{rate}",
        human_time(median),
        human_time(best),
        human_time(p99)
    );
    let (bytes_per_iter, elems_per_iter) = match throughput {
        Some(Throughput::Bytes(n)) => (Some(n), None),
        Some(Throughput::Elements(n)) => (None, Some(n)),
        None => (None, None),
    };
    RESULTS
        .lock()
        .expect("results poisoned")
        .push(SampleRecord {
            label: label.to_string(),
            median_ns: median * 1e9,
            best_ns: best * 1e9,
            p50_ns: Some(quantile_sorted(&per_iter, 0.50) * 1e9),
            p90_ns: Some(p90 * 1e9),
            p99_ns: Some(p99 * 1e9),
            bytes_per_iter,
            elems_per_iter,
        });
}

/// Minimal JSON string escape (labels are ASCII identifiers in practice).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Locate the workspace root by walking up from the current directory to
/// the first `Cargo.toml` declaring `[workspace]`; falls back to `.`.
fn workspace_root() -> std::path::PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(body) = std::fs::read_to_string(&manifest) {
            if body.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return ".".into();
        }
    }
}

/// Bench-target name from `argv[0]`: file stem minus cargo's trailing
/// `-<16 hex>` disambiguation hash.
fn bench_name() -> String {
    let argv0 = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&argv0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    }
}

/// Record one externally-measured sample into the JSON summary — the
/// hook non-criterion experiment binaries (e.g. `fig12_dist_scaling`)
/// use to feed the same perf-trajectory files the bench targets write.
/// `median_ns`/`best_ns` are per-iteration wall-clock nanoseconds;
/// `throughput` adds the derived bytes/s or elems/s column.
pub fn record_sample(label: &str, median_ns: f64, best_ns: f64, throughput: Option<Throughput>) {
    let (bytes_per_iter, elems_per_iter) = match throughput {
        Some(Throughput::Bytes(n)) => (Some(n), None),
        Some(Throughput::Elements(n)) => (None, Some(n)),
        None => (None, None),
    };
    RESULTS
        .lock()
        .expect("results poisoned")
        .push(SampleRecord {
            label: label.to_string(),
            median_ns,
            best_ns,
            p50_ns: None,
            p90_ns: None,
            p99_ns: None,
            bytes_per_iter,
            elems_per_iter,
        });
}

/// Record an externally-measured *distribution* into the JSON summary:
/// `samples_ns` are per-iteration wall-clock nanoseconds; median/best
/// and p50/p90/p99 are derived here so experiment binaries (fig12's
/// per-step times) emit the same quantile columns as bench targets.
/// Empty input records nothing.
pub fn record_samples(label: &str, samples_ns: &[f64], throughput: Option<Throughput>) {
    if samples_ns.is_empty() {
        return;
    }
    let mut sorted = samples_ns.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let (bytes_per_iter, elems_per_iter) = match throughput {
        Some(Throughput::Bytes(n)) => (Some(n), None),
        Some(Throughput::Elements(n)) => (None, Some(n)),
        None => (None, None),
    };
    RESULTS
        .lock()
        .expect("results poisoned")
        .push(SampleRecord {
            label: label.to_string(),
            median_ns: sorted[sorted.len() / 2],
            best_ns: sorted[0],
            p50_ns: Some(quantile_sorted(&sorted, 0.50)),
            p90_ns: Some(quantile_sorted(&sorted, 0.90)),
            p99_ns: Some(quantile_sorted(&sorted, 0.99)),
            bytes_per_iter,
            elems_per_iter,
        });
}

/// Write every recorded benchmark result as machine-readable JSON —
/// called by `criterion_main!` after all groups ran. The perf-trajectory
/// file: `BENCH_<target>.json` at the workspace root (override the path
/// with `EBTRAIN_BENCH_JSON`; format documented in the README). Skipped
/// in `--test` mode (nothing is recorded) so `cargo test` never clobbers
/// real measurements.
pub fn write_json_summary() {
    write_json_summary_named(&bench_name());
}

/// [`write_json_summary`] with an explicit series name (the file becomes
/// `BENCH_<name>.json`) — for experiment binaries whose target name is
/// not the series name they maintain.
pub fn write_json_summary_named(name: &str) {
    write_summary_impl(name, false);
}

/// Like [`write_json_summary_named`], but **merges** with the existing
/// `BENCH_<name>.json` instead of replacing it: rows from previous runs
/// whose label was *not* re-recorded this run are retained, so a series
/// accumulates a trajectory across runs that each sweep only a subset
/// of its rows (e.g. one codec of the codec matrix).
pub fn write_json_summary_merged(name: &str) {
    write_summary_impl(name, true);
}

/// Render one record as a single JSON object line (no trailing comma).
fn render_sample(r: &SampleRecord) -> String {
    let mibs = r
        .bytes_per_iter
        .map(|b| b as f64 / (r.median_ns * 1e-9) / (1 << 20) as f64);
    let quantiles = match (r.p50_ns, r.p90_ns, r.p99_ns) {
        (Some(p50), Some(p90), Some(p99)) => {
            format!(", \"p50_ns\": {p50:.1}, \"p90_ns\": {p90:.1}, \"p99_ns\": {p99:.1}")
        }
        _ => String::new(),
    };
    format!(
        "{{\"label\": \"{}\", \"median_ns\": {:.1}, \"best_ns\": {:.1}{}{}{}{}}}",
        json_escape(&r.label),
        r.median_ns,
        r.best_ns,
        quantiles,
        r.bytes_per_iter
            .map(|b| format!(", \"bytes_per_iter\": {b}"))
            .unwrap_or_default(),
        r.elems_per_iter
            .map(|e| format!(", \"elems_per_iter\": {e}"))
            .unwrap_or_default(),
        mibs.map(|m| format!(", \"mib_per_s\": {m:.1}"))
            .unwrap_or_default(),
    )
}

/// Extract the label of a rendered sample line (the writer's own
/// line-oriented format: one object per line, label first).
fn sample_line_label(line: &str) -> Option<&str> {
    let rest = line.trim().strip_prefix("{\"label\": \"")?;
    rest.split('"').next()
}

fn write_summary_impl(name: &str, merge: bool) {
    let records = std::mem::take(&mut *RESULTS.lock().expect("results poisoned"));
    if records.is_empty() {
        return;
    }
    let path = std::env::var("EBTRAIN_BENCH_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| workspace_root().join(format!("BENCH_{name}.json")));
    let mut lines: Vec<String> = Vec::new();
    if merge {
        if let Ok(prev) = std::fs::read_to_string(&path) {
            let fresh: std::collections::HashSet<&str> =
                records.iter().map(|r| r.label.as_str()).collect();
            for line in prev.lines() {
                if let Some(label) = sample_line_label(line) {
                    if !fresh.contains(label) {
                        lines.push(line.trim().trim_end_matches(',').to_string());
                    }
                }
            }
        }
    }
    lines.extend(records.iter().map(render_sample));
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"bench\": \"{}\",\n  \"samples\": [\n",
        json_escape(name)
    ));
    for (i, line) in lines.iter().enumerate() {
        out.push_str("    ");
        out.push_str(line);
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(&path, out) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:>8.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:>8.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:>8.2} ms", secs * 1e3)
    } else {
        format!("{secs:>8.3} s ")
    }
}

fn human_bytes(bytes_per_sec: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes_per_sec;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.1} {}", UNITS[u])
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run_to_completion() {
        let mut c = Criterion {
            sample_size: 2,
            test_mode: true,
        };
        c.bench_function("smoke", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(8));
        g.bench_function("inner", |b| b.iter(|| 2 * 2));
        g.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, x| b.iter(|| x + 1));
        g.finish();
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(quantile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(quantile_sorted(&sorted, 0.50), 51.0);
        assert_eq!(quantile_sorted(&sorted, 0.99), 99.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 100.0);
        assert_eq!(quantile_sorted(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn record_samples_derives_quantiles() {
        record_samples("q/test", &[30.0, 10.0, 20.0, 40.0], None);
        let rec = {
            let mut res = RESULTS.lock().unwrap();
            let i = res
                .iter()
                .position(|r| r.label == "q/test")
                .expect("row recorded");
            res.remove(i)
        };
        assert_eq!(rec.best_ns, 10.0);
        assert_eq!(rec.p99_ns, Some(40.0));
    }

    #[test]
    fn human_units_render() {
        assert!(human_time(5e-9).contains("ns"));
        assert!(human_time(5e-5).contains("µs"));
        assert!(human_time(5e-2).contains("ms"));
        assert!(human_bytes(2048.0).contains("KiB"));
    }

    #[test]
    fn sample_lines_roundtrip_through_the_merge_parser() {
        // The merging writer re-reads its own line format; the label
        // parser must survive indentation, trailing commas, and ignore
        // non-sample lines.
        let r = SampleRecord {
            label: "fields/sz/eb=1e-2/compress".into(),
            median_ns: 1234.5,
            best_ns: 1000.0,
            p50_ns: Some(1234.5),
            p90_ns: Some(1500.0),
            p99_ns: Some(1900.0),
            bytes_per_iter: Some(1 << 20),
            elems_per_iter: None,
        };
        let line = render_sample(&r);
        assert!(line.contains("\"p99_ns\": 1900.0"), "no p99 in {line}");
        assert_eq!(sample_line_label(&line), Some(r.label.as_str()));
        assert_eq!(
            sample_line_label(&format!("    {line},")),
            Some(r.label.as_str())
        );
        assert_eq!(sample_line_label("  \"bench\": \"codec_matrix\","), None);
        assert_eq!(sample_line_label("  ]"), None);
    }
}
